"""Regression and property tests for the fill-on-completion memory hierarchy.

Each regression test pins one of the bugs fixed by the transaction rewrite and
fails on the pre-fix model:

* dirty L1D/L2 victims used to be dropped instead of written back level by
  level (undercounting writebacks and DRAM write energy);
* the hardware prefetcher used to check only ``mshrs.is_full``, bypassing the
  demand reserve and starving demand misses;
* DRAM writebacks used to be issued at ``cycle=0``, poisoning the latency
  statistics with a fake queue delay that grew with simulated time;
* instruction fetches used to bypass the MSHRs entirely, so repeated fetches
  of one missing line each paid (and counted) a full DRAM access;
* lines used to be installed at *request* time, so residency and LRU state
  could observe the future.

The property tests check the two structural invariants of the rewrite: no
cache level reports a line resident before its fill's completion cycle, and
MSHR occupancy always equals the number of outstanding fill transactions.
"""

from hypothesis import given, settings, strategies as st

from repro.memory.cache import CacheConfig
from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy, MemoryLevel
from repro.uarch.core import OoOCore
from repro.workloads.generators import mixed_compute_memory, strided_stream
from repro.simulation.simulator import run_variant


def tiny_hierarchy(**overrides) -> MemoryHierarchy:
    """A hierarchy with single-set caches so evictions are easy to force."""
    config = HierarchyConfig(
        l1i=CacheConfig("L1I", 2 * 64, 2, latency=1),
        l1d=CacheConfig("L1D", 2 * 64, 2, latency=2),
        l2=CacheConfig("L2", 4 * 64, 4, latency=4),
        l3=CacheConfig("L3", 8 * 64, 8, latency=8),
        **overrides,
    )
    return MemoryHierarchy(config)


def settle(hierarchy: MemoryHierarchy, cycle: int) -> int:
    """Drain fills due by ``cycle`` and return the cycle for chaining."""
    hierarchy.drain(cycle)
    return cycle


class TestWritebackPropagation:
    def test_dirty_l1d_victim_lands_in_next_level_and_cascades(self):
        hierarchy = tiny_hierarchy()
        victim = 0x0
        # Install the victim dirty in L1D only, then push it out with two
        # clean installs: the dirty line must move into L2, not vanish.
        hierarchy._install(hierarchy.l1d, victim, 0, dirty=True)
        hierarchy._install(hierarchy.l1d, 0x40, 0)
        hierarchy._install(hierarchy.l1d, 0x80, 0)
        assert not hierarchy.l1d.contains(victim)
        assert hierarchy.l2.contains(victim)
        assert hierarchy.stats.writebacks == 1
        # Push it out of L2: it must land in L3 (still dirty).
        for i in range(1, 5):
            hierarchy._install(hierarchy.l2, 0x40 * i, 0)
        assert not hierarchy.l2.contains(victim)
        assert hierarchy.l3.contains(victim)
        # And out of L3: the final hop is a DRAM write.
        writes_before = hierarchy.dram.stats.writes
        for i in range(1, 9):
            hierarchy._install(hierarchy.l3, 0x40 * i, 0)
        assert not hierarchy.l3.contains(victim)
        assert hierarchy.dram.stats.writes == writes_before + 1

    def test_store_traffic_reaches_dram_end_to_end(self):
        # Streams of committed stores through the public API must eventually
        # produce DRAM writes (pre-fix: dirty L1/L2 victims were dropped, so
        # only the rare dirty L3 victim ever reached DRAM).
        hierarchy = tiny_hierarchy()
        cycle = 0
        for i in range(32):
            hierarchy.access_data(i * 64, cycle, is_write=True)
            cycle += 600  # long enough for each fill to land
        hierarchy.drain(cycle)
        assert hierarchy.stats.writebacks > 0
        assert hierarchy.dram.stats.writes > 0

    def test_store_merging_with_inflight_fill_installs_dirty(self):
        hierarchy = tiny_hierarchy()
        line = 0x0
        first = hierarchy.access_data(line, 0, is_write=False)
        assert first.level is MemoryLevel.DRAM
        # A store to the same line while the fill is outstanding must dirty
        # the pending fill (pre-fix it merged and the dirty bit was lost).
        merged = hierarchy.access_data(line + 8, 10, is_write=True)
        assert merged.level is MemoryLevel.INFLIGHT
        cycle = settle(hierarchy, first.latency + 1)
        assert hierarchy.l1d.contains(line)
        hierarchy._install(hierarchy.l1d, 0x40, cycle)
        hierarchy._install(hierarchy.l1d, 0x80, cycle)
        assert hierarchy.l2.contains(line)
        assert hierarchy.stats.writebacks == 1


class TestStoreMergingWithIfetchFill:
    def test_store_merging_with_ifetch_fill_dirties_l1d_not_l1i(self):
        hierarchy = MemoryHierarchy()
        line = 0xA00000
        first = hierarchy.access_instruction(line, 0)
        assert first.level is MemoryLevel.DRAM
        # A store to the same line merges with the I-side fill; the returning
        # line must additionally install into L1D and carry the dirty bit
        # there — an instruction cache can never hold dirty data.
        merged = hierarchy.access_data(line + 16, 10, is_write=True)
        assert merged.level is MemoryLevel.INFLIGHT
        hierarchy.drain(first.latency + 1)
        assert hierarchy.l1i.contains(line)
        assert hierarchy.l1d.contains(line)
        assert not any(
            dirty for ways in hierarchy.l1i._sets.values() for dirty in ways.values()
        )
        assert any(
            dirty for ways in hierarchy.l1d._sets.values() for dirty in ways.values()
        )


class TestStoreCommitUnderMSHRPressure:
    def test_stores_are_not_dropped_when_mshrs_are_full(self):
        # With a tiny MSHR file, committed stores regularly find the file
        # full.  Commit must stall the store at the ROB head and retry when
        # an entry frees — not silently drop the write (losing the dirty bit
        # and undercounting writebacks) — and the run must still finish (the
        # stalled store contributes a wake-up candidate, so the idle-skip
        # loop cannot deadlock on fills it never scheduled).
        trace = mixed_compute_memory(num_uops=1_500, store_fraction=0.4)
        hierarchy = MemoryHierarchy(HierarchyConfig(mshr_entries=2, mshr_demand_reserve=1))
        core = OoOCore(trace, hierarchy=hierarchy)
        stats = core.run(max_cycles=2_000_000)
        assert core.finished
        expected_stores = sum(1 for uop in trace if uop.is_store)
        assert stats.committed_stores == expected_stores
        # Every committed store dirtied a line: write traffic must exist.
        assert hierarchy.stats.writebacks > 0 or any(
            dirty
            for ways in hierarchy.l1d._sets.values()
            for dirty in ways.values()
        )


class TestPrefetcherDemandReserve:
    def test_hardware_prefetch_cannot_take_reserved_entries(self):
        hierarchy = MemoryHierarchy(
            HierarchyConfig(mshr_entries=4, mshr_demand_reserve=2, prefetcher="nextline")
        )
        # Two demand misses fill the prefetch-eligible entries (4 - 2 = 2);
        # each also trains the next-line prefetcher, whose target must now be
        # rejected by the reserve (pre-fix: is_full() passed until all 4
        # entries were taken, letting prefetches starve demand misses).
        hierarchy.access_data(0x100000, 0, pc=0x400)
        hierarchy.access_data(0x200000, 0, pc=0x404)
        assert hierarchy.mshrs.lookup(0x200000 + 64, 0) is None
        assert hierarchy.prefetcher.stats.prefetches_dropped >= 1
        # A demand miss can still take a reserved entry (pre-fix, prefetches
        # had consumed all four entries by now and this demand was starved).
        assert not hierarchy.access_data(0x300000, 0).retried

    def test_runahead_prefetch_uses_same_limit(self):
        config = HierarchyConfig(mshr_entries=4, mshr_demand_reserve=2)
        hierarchy = MemoryHierarchy(config)
        assert not hierarchy.access_data(0x1000000, 0, is_prefetch=True).retried
        assert not hierarchy.access_data(0x2000000, 0, is_prefetch=True).retried
        assert hierarchy.access_data(0x3000000, 0, is_prefetch=True).retried
        assert not hierarchy.access_data(0x4000000, 0).retried


class TestDRAMWritebackTiming:
    def test_writeback_issues_at_real_cycle_not_zero(self):
        # Force a dirty line to reach DRAM late in the run: its recorded
        # write latency must be a normal access latency, not inflated by a
        # fake (bank_free_at - 0) queue delay that grows with simulated time
        # (pre-fix, writebacks were issued at cycle=0).
        hierarchy = tiny_hierarchy()
        cycle = 100_000
        for i in range(16):
            hierarchy.access_data(i * 64, cycle, is_write=True)
            cycle += 600
        hierarchy.drain(cycle)
        stats = hierarchy.dram.stats
        assert stats.writes > 0
        assert stats.average_write_latency < 2_000

    def test_read_and_write_latency_tracked_separately(self):
        hierarchy = tiny_hierarchy()
        hierarchy.access_data(0x0, 0)
        stats = hierarchy.dram.stats
        assert stats.reads == 1 and stats.writes == 0
        assert stats.read_latency_cycles > 0
        assert stats.write_latency_cycles == 0
        direct = hierarchy.dram.access(0x9000, 5_000, is_write=True)
        assert stats.write_latency_cycles == direct
        assert stats.average_write_latency == direct
        assert stats.total_latency_cycles == stats.read_latency_cycles + direct

    def test_write_queue_occupies_shared_bus(self):
        # A burst of posted writes must delay a subsequent read: writeback
        # traffic costs bandwidth instead of being free.
        quiet = MemoryHierarchy().dram
        baseline = quiet.access(0x0, 1_000)
        busy = MemoryHierarchy().dram
        for i in range(8):
            busy.access(0x100000 + i * 0x100000, 1_000, is_write=True)
        delayed = busy.access(0x0, 1_000)
        assert delayed > baseline
        assert busy.stats.write_queue_peak >= 2


class TestInstructionSideMLP:
    def test_repeated_fetches_of_missing_line_merge(self):
        hierarchy = MemoryHierarchy()
        pc = 0x700000
        first = hierarchy.access_instruction(pc, 0)
        assert first.level is MemoryLevel.DRAM
        # A second fetch of the same line while the fill is in flight merges
        # with the outstanding MSHR entry and pays only the remaining latency
        # (pre-fix: every fetch paid and counted a fresh DRAM access).
        second = hierarchy.access_instruction(pc + 8, 10)
        assert second.level is MemoryLevel.INFLIGHT
        assert second.latency <= first.latency
        assert hierarchy.dram.stats.reads == 1

    def test_instruction_misses_allocate_mshrs(self):
        hierarchy = MemoryHierarchy()
        assert hierarchy.mshrs.occupancy(0) == 0
        hierarchy.access_instruction(0x700000, 0)
        assert hierarchy.mshrs.occupancy(0) == 1
        assert hierarchy.inflight_lines(0) == 1

    def test_ifetch_waits_when_mshrs_full(self):
        hierarchy = MemoryHierarchy(HierarchyConfig(mshr_entries=2))
        hierarchy.access_data(0x100000, 0)
        hierarchy.access_data(0x200000, 0)
        result = hierarchy.access_instruction(0x300000, 1)
        assert result.retried
        assert result.latency >= 1  # wait estimate until an entry frees
        assert hierarchy.stats.mshr_stalls == 1

    def test_data_and_instruction_fills_share_one_miss_path(self):
        # An ifetch to a line with an outstanding *data* fill merges with it.
        hierarchy = MemoryHierarchy()
        addr = 0x800000
        hierarchy.access_data(addr, 0)
        result = hierarchy.access_instruction(addr, 5)
        assert result.level is MemoryLevel.INFLIGHT
        assert hierarchy.dram.stats.reads == 1


class TestFillOnCompletion:
    def test_line_not_resident_before_completion(self):
        hierarchy = MemoryHierarchy()
        addr = 0x900000
        result = hierarchy.access_data(addr, 0)
        completion = result.latency
        hierarchy.drain(completion - 1)
        for cache in (hierarchy.l1d, hierarchy.l2, hierarchy.l3):
            assert not cache.contains(addr)
        hierarchy.drain(completion)
        assert hierarchy.l1d.contains(addr)
        assert hierarchy.l2.contains(addr)
        assert hierarchy.l3.contains(addr)

    def test_hierarchy_has_no_shadow_inflight_dict(self):
        # The MSHR file is the single book of record for outstanding lines.
        hierarchy = MemoryHierarchy()
        assert not hasattr(hierarchy, "_inflight")


ACCESS_OPS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=63),  # line index (bounded range)
        st.integers(min_value=1, max_value=400),  # cycle gap to previous op
        st.sampled_from(["load", "store", "prefetch", "ifetch"]),
    ),
    min_size=1,
    max_size=60,
)


class TestHierarchyInvariants:
    @settings(max_examples=60, deadline=None)
    @given(ops=ACCESS_OPS)
    def test_no_early_residency_and_mshr_matches_outstanding_fills(self, ops):
        hierarchy = MemoryHierarchy(HierarchyConfig(mshr_entries=8, mshr_demand_reserve=2))
        cycle = 0
        outstanding = {}  # line address -> (completion cycle, innermost target)
        for line_index, gap, kind in ops:
            cycle += gap
            addr = 0x40_0000 + line_index * 4096  # spread across sets/banks
            hierarchy.drain(cycle)
            outstanding = {a: v for a, v in outstanding.items() if v[0] > cycle}
            if kind == "ifetch":
                result = hierarchy.access_instruction(addr, cycle)
                target = hierarchy.l1i
            else:
                result = hierarchy.access_data(
                    addr,
                    cycle,
                    is_write=(kind == "store"),
                    is_prefetch=(kind == "prefetch"),
                )
                target = hierarchy.l1d
            if not result.retried and result.level not in (
                MemoryLevel.L1D,
                MemoryLevel.L1I,
                MemoryLevel.INFLIGHT,
            ):
                outstanding[addr] = (cycle + result.latency, target)
            # Invariant 1: a fill's target L1 never reports the line resident
            # before the fill's completion cycle (other levels may hold the
            # line from earlier, unrelated fills).
            for pending_addr, (completion, pending_target) in outstanding.items():
                if completion > cycle:
                    assert not pending_target.contains(pending_addr), (
                        f"line {pending_addr:#x} resident in "
                        f"{pending_target.config.name} at cycle {cycle} "
                        f"before completion {completion}"
                    )
            # Invariant 2: MSHR occupancy equals the number of outstanding
            # fill transactions — the MSHR file is the only miss state.
            assert hierarchy.mshrs.occupancy(cycle) == len(hierarchy._fill_queue)
            assert hierarchy.mshrs.occupancy(cycle) == len(outstanding)


class TestProbeFillEvents:
    def test_mem_profile_reports_fills_and_writebacks(self):
        result = run_variant(
            strided_stream(num_uops=2_000), variant="ooo", probes=["mem_profile"]
        )
        report = result.probe_reports["mem_profile"]
        assert report["total"] == sum(report["levels"].values())
        assert sum(report["fills"].values()) > 0
        assert "L1D" in report["fills"]
