"""Unit tests for the paper's hardware structures: SST, PRDQ, EMQ."""

import pytest

from repro.core.emq import ExtendedMicroOpQueue
from repro.core.prdq import PreciseRegisterDeallocationQueue
from repro.core.sst import StallingSliceTable
from repro.uarch.core import DynInstr
from repro.uarch.frontend import FetchedUop
from repro.workloads.trace import MicroOp, UopClass


def make_instr(seq, dst=1):
    uop = MicroOp(pc=0x400000 + 4 * seq, uop_class=UopClass.IALU, dst=dst)
    return DynInstr(uop=uop, seq=seq, runahead=True)


class TestSST:
    def test_insert_then_hit(self):
        sst = StallingSliceTable(capacity=4)
        assert not sst.lookup(0x400000)
        sst.insert(0x400000)
        assert sst.lookup(0x400000)
        assert sst.stats.hits == 1
        assert sst.stats.lookups == 2

    def test_capacity_and_lru_eviction(self):
        sst = StallingSliceTable(capacity=2)
        sst.insert(0x1)
        sst.insert(0x2)
        sst.lookup(0x1)  # make 0x1 most recently used
        evicted = sst.insert(0x3)
        assert evicted == 0x2
        assert sst.contains(0x1)
        assert not sst.contains(0x2)
        assert len(sst) == 2

    def test_reinsert_does_not_duplicate(self):
        sst = StallingSliceTable(capacity=4)
        sst.insert(0x10)
        sst.insert(0x10)
        assert len(sst) == 1
        assert sst.stats.inserts == 1

    def test_storage_matches_paper(self):
        # Section 3.6: 256 entries with 4-byte tags = 1 KB of storage.
        assert StallingSliceTable(capacity=256).storage_bytes == 1024

    def test_pcs_and_clear(self):
        sst = StallingSliceTable(capacity=4)
        for pc in (1, 2, 3):
            sst.insert(pc)
        assert sst.pcs() == [1, 2, 3]
        sst.clear()
        assert len(sst) == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            StallingSliceTable(capacity=0)


class TestPRDQ:
    def test_in_order_deallocation_requires_execution(self):
        prdq = PreciseRegisterDeallocationQueue(capacity=4)
        first = make_instr(0)
        second = make_instr(1)
        prdq.allocate(first, old_preg=10, old_is_fp=False, reclaim_old=True)
        prdq.allocate(second, old_preg=11, old_is_fp=False, reclaim_old=True)
        freed = []
        # The younger instruction executes first: nothing deallocates yet
        # because the head entry has not executed.
        prdq.mark_executed(second)
        assert prdq.deallocate_ready(lambda fp, reg: freed.append(reg)) == 0
        prdq.mark_executed(first)
        assert prdq.deallocate_ready(lambda fp, reg: freed.append(reg)) == 2
        assert freed == [10, 11]

    def test_non_reclaimable_old_mapping_not_freed(self):
        prdq = PreciseRegisterDeallocationQueue(capacity=2)
        instr = make_instr(0)
        prdq.allocate(instr, old_preg=5, old_is_fp=False, reclaim_old=False)
        prdq.mark_executed(instr)
        freed = []
        assert prdq.deallocate_ready(lambda fp, reg: freed.append(reg)) == 1
        assert freed == []

    def test_overflow_raises_and_counts(self):
        prdq = PreciseRegisterDeallocationQueue(capacity=1)
        prdq.allocate(make_instr(0), old_preg=None, old_is_fp=None, reclaim_old=False)
        with pytest.raises(OverflowError):
            prdq.allocate(make_instr(1), old_preg=None, old_is_fp=None, reclaim_old=False)
        assert prdq.stats.stalls_full == 1

    def test_clear_discards_entries(self):
        prdq = PreciseRegisterDeallocationQueue(capacity=4)
        prdq.allocate(make_instr(0), old_preg=1, old_is_fp=False, reclaim_old=True)
        discarded = prdq.clear()
        assert len(discarded) == 1
        assert len(prdq) == 0

    def test_storage_matches_paper(self):
        # Section 3.6: 192 entries for a total of 768 bytes.
        assert PreciseRegisterDeallocationQueue(capacity=192).storage_bytes == 768

    def test_mark_executed_unknown_instr(self):
        prdq = PreciseRegisterDeallocationQueue()
        assert not prdq.mark_executed(make_instr(7))


class TestEMQ:
    def _entry(self, seq):
        uop = MicroOp(pc=0x400000 + 4 * seq, uop_class=UopClass.IALU, dst=1)
        return FetchedUop(seq=seq, uop=uop, ready_cycle=0)

    def test_fifo_drain_order(self):
        emq = ExtendedMicroOpQueue(capacity=4)
        for seq in range(3):
            emq.append(self._entry(seq))
        drained = emq.drain()
        assert [entry.seq for entry in drained] == [0, 1, 2]
        assert emq.is_empty
        assert emq.stats.drained == 3

    def test_full_raises_and_counts(self):
        emq = ExtendedMicroOpQueue(capacity=1)
        emq.append(self._entry(0))
        assert emq.is_full
        with pytest.raises(OverflowError):
            emq.append(self._entry(1))
        assert emq.stats.stalls_full == 1

    def test_storage_matches_paper(self):
        # Section 3.6: a 768-entry EMQ adds about 3 KB.
        assert ExtendedMicroOpQueue(capacity=768).storage_bytes == 3072

    def test_clear_does_not_count_as_drained(self):
        emq = ExtendedMicroOpQueue(capacity=4)
        emq.append(self._entry(0))
        emq.clear()
        assert emq.stats.drained == 0
        assert emq.is_empty


class TestRunaheadBufferStorage:
    def test_default_storage_matches_default_chain_length(self):
        from repro.core.runahead_buffer import RunaheadBufferController

        controller = RunaheadBufferController()
        assert controller.max_chain_length == 32
        assert controller.storage_bytes == 32 * 8

    def test_storage_respects_explicit_chain_length(self):
        from repro.core.runahead_buffer import RunaheadBufferController

        controller = RunaheadBufferController(max_chain_length=4)
        assert controller.max_chain_length == 4
        # Tiny chains still get the minimum SRAM macro.
        assert controller.storage_bytes == RunaheadBufferController.MIN_STORAGE_BYTES

    def test_attach_picks_up_core_config(self):
        from repro.core import build_core
        from repro.uarch.config import CoreConfig
        from repro.workloads.spec_surrogates import build_surrogate

        trace = build_surrogate("milc", num_uops=200)
        core = build_core(
            trace,
            variant="runahead_buffer",
            config=CoreConfig(runahead_buffer_chain_length=16),
        )
        assert core.controller.max_chain_length == 16
        assert core.controller.storage_bytes == 16 * 8
