"""Chaos tests: every fleet robustness claim, proven against injected faults.

Each test runs a *real* daemon (``ServiceThread``) and real workers
(``FleetWorker`` threads talking HTTP), injects one failure mode through
the deterministic harness in :mod:`tests.chaos`, and asserts the two
invariants the fleet design promises:

1. **bit-identical results** — the distributed run's per-cell stats digests
   equal a serial in-process run's, whatever was killed or dropped;
2. **exactly-once cache effects** — the daemon writes each simulated cell
   into the result cache exactly once, no matter how many workers executed
   it along the way.
"""

import time

import pytest

from chaos import ChaosWorker, FaultPlan, sweep_digests, wait_until
from repro.service import ServiceClient
from repro.service.journal import replay_journal
from repro.service.server import ServiceThread
from repro.simulation.engine import ExperimentEngine, SweepSpec

SWEEP_DOC = {
    "kind": "sweep",
    "spec": {
        "workloads": ["mcf", "libquantum"],
        "variants": ["ooo", "runahead"],
        "num_uops": 200,
    },
}
N_CELLS = 4

#: Short leases so expiry-path tests run in tenths of seconds.
LEASE_TTL = 0.3


@pytest.fixture(scope="module")
def serial_digests(tmp_path_factory):
    """Ground truth: the same sweep run serially, in-process, no fleet."""
    engine = ExperimentEngine(
        workers=1, cache_dir=tmp_path_factory.mktemp("serial-cache")
    )
    spec = SweepSpec.from_dict(SWEEP_DOC["spec"])
    return sweep_digests(engine.run_sweep(spec).to_dict())


def _start_service(tmp_path, **kwargs):
    kwargs.setdefault("lease_ttl", LEASE_TTL)
    return ServiceThread(state_dir=tmp_path / "state", max_queue=8, **kwargs)


def _count_cache_puts(handle):
    """Wrap the daemon's cache.put with a counter (same-process privilege)."""
    cache = handle.service.engine.cache
    counts = {"puts": 0}
    original = cache.put

    def counting_put(key, payload):
        counts["puts"] += 1
        return original(key, payload)

    cache.put = counting_put
    return counts


def _run_job_to_done(handle, deadline_s=120.0):
    client = ServiceClient(handle.base_url)
    job_id = client.submit(SWEEP_DOC)["id"]
    final = client.wait(job_id, deadline=time.monotonic() + deadline_s)
    assert final["state"] == "done", final
    return client, final


def test_sigkill_after_claim_reclaims_lease_and_matches_serial(
    tmp_path, serial_digests
):
    """A worker SIGKILL'd right after claiming: lease expires, cells requeue,
    a late-arriving healthy worker finishes, results are bit-identical."""
    handle = _start_service(tmp_path)
    victim = replacement = None
    try:
        victim = ChaosWorker(
            handle.base_url, "victim", kill_after_claim=1, backoff_seed=1
        ).start()
        client = ServiceClient(handle.base_url)
        job_id = client.submit(SWEEP_DOC)["id"]
        # The victim claims once and dies; its unrenewed lease must be
        # reclaimed within the TTL.
        assert wait_until(
            lambda: handle.service.fleet.reclaimed_leases >= 1, timeout=30.0
        ), "lease of the killed worker was never reclaimed"
        assert wait_until(lambda: victim.killed, timeout=30.0)
        replacement = ChaosWorker(
            handle.base_url, "replacement", backoff_seed=2
        ).start()
        final = client.wait(job_id, deadline=time.monotonic() + 120.0)
        assert final["state"] == "done", final
        result = client.result(job_id)["result"]
        assert sweep_digests(result) == serial_digests
        # The journal recorded the lifecycle durably: the reclaimed cell's
        # attempt count reconstructs to >= 2 on replay.
        records = replay_journal(tmp_path / "state" / "journal.jsonl")
        record = next(r for r in records if r.id == job_id)
        assert max(record.attempts.values()) >= 2
        assert not record.quarantined
    finally:
        if replacement is not None:
            replacement.stop()
        handle.stop()


def test_sigkill_before_complete_never_double_writes_cache(
    tmp_path, serial_digests
):
    """A worker that computed a batch but died before delivering it: the
    cells re-execute elsewhere, and each cell is cached exactly once."""
    handle = _start_service(tmp_path)
    puts = _count_cache_puts(handle)
    victim = survivor = None
    try:
        victim = ChaosWorker(
            handle.base_url, "victim", kill_before_complete=1, backoff_seed=3
        ).start()
        survivor = ChaosWorker(handle.base_url, "survivor", backoff_seed=4).start()
        client, final = _run_job_to_done(handle)
        assert sweep_digests(client.result(final["id"])["result"]) == serial_digests
        assert wait_until(lambda: victim.killed, timeout=30.0)
        # Exactly one cache write per cell: the daemon is the only writer
        # and it writes on first delivery only.
        assert puts["puts"] == N_CELLS
        assert final["accounting"] == {
            "total": N_CELLS, "cached": 0, "simulated": N_CELLS,
        }
    finally:
        if survivor is not None:
            survivor.stop()
        handle.stop()


def test_forced_early_expiry_rejects_stale_completion(tmp_path, serial_digests):
    """A lease force-expired while its healthy worker is mid-batch: the
    worker's completion is rejected as stale (no double delivery) and the
    re-claimed cell still produces identical bits."""
    plan = FaultPlan(expire_leases={"L000001"})
    handle = _start_service(tmp_path, fault_plan=plan)
    puts = _count_cache_puts(handle)
    worker = None
    try:
        worker = ChaosWorker(handle.base_url, "steady", backoff_seed=5).start()
        client, final = _run_job_to_done(handle)
        assert sweep_digests(client.result(final["id"])["result"]) == serial_digests
        assert handle.service.fleet.stale_completions >= 1
        assert ("expire", "L000001", "w0001") in plan.log
        assert puts["puts"] == N_CELLS
    finally:
        if worker is not None:
            worker.stop()
        handle.stop()


def test_dropped_and_delayed_responses_are_absorbed(tmp_path, serial_digests):
    """Network flakiness on the worker API: one claim's connection dies
    before the daemon acts, one completion is processed but its response
    dropped, heartbeats are delayed — the job still finishes identically."""
    plan = FaultPlan(
        requests=[
            {"method": "POST", "path_contains": "/claim", "times": 1,
             "action": ("drop",)},
            {"method": "POST", "path_contains": "/complete", "times": 1,
             "action": ("drop-after",)},
            {"method": "POST", "path_contains": "/heartbeat", "times": 3,
             "action": ("delay", 0.02)},
        ]
    )
    handle = _start_service(tmp_path, fault_plan=plan)
    puts = _count_cache_puts(handle)
    worker = None
    try:
        worker = ChaosWorker(handle.base_url, "flaky-net", backoff_seed=6).start()
        client, final = _run_job_to_done(handle)
        assert sweep_digests(client.result(final["id"])["result"]) == serial_digests
        # The drop-after completion was acted on: its results were delivered
        # once, even though the worker never heard the acknowledgement.
        assert puts["puts"] == N_CELLS
        assert any(entry[2] == "drop-after" for entry in plan.log)
    finally:
        if worker is not None:
            worker.stop()
        handle.stop()


def test_fully_partitioned_fleet_degrades_to_local_execution(
    tmp_path, serial_digests
):
    """Workers registered but silent (partition): after the liveness window
    the daemon executes cells itself instead of hanging the job."""
    handle = _start_service(tmp_path, lease_ttl=0.2)
    try:
        client = ServiceClient(handle.base_url)
        # A ghost: registers, then never claims or heartbeats again.
        ghost = client.worker_register("ghost")["worker"]
        client2, final = _run_job_to_done(handle)
        assert sweep_digests(client2.result(final["id"])["result"]) == serial_digests
        snapshot = handle.service.fleet.snapshot()
        ghost_info = next(w for w in snapshot["workers"] if w["id"] == ghost)
        assert ghost_info["cells_completed"] == 0
        assert snapshot["active_leases"] == 0
    finally:
        handle.stop()


def test_four_worker_sweep_is_bit_identical_and_drains_cleanly(
    tmp_path, serial_digests
):
    """The happy-path fleet: 4 workers split a sweep; digests match the
    serial run; a drained worker exits 0 without abandoning anything."""
    handle = _start_service(tmp_path)
    workers = []
    try:
        workers = [
            ChaosWorker(handle.base_url, f"w{i}", backoff_seed=10 + i).start()
            for i in range(4)
        ]
        client, final = _run_job_to_done(handle)
        assert sweep_digests(client.result(final["id"])["result"]) == serial_digests
        assert final["accounting"]["simulated"] == N_CELLS
        # Drain one worker: it must exit 0 on its own.
        drained = workers[0]
        client.worker_drain(drained.worker.worker_id)
        assert wait_until(lambda: not drained.alive, timeout=30.0)
        assert drained.exit_code == 0
    finally:
        for worker in workers:
            worker.stop()
        handle.stop()


def test_poisoned_cell_quarantines_instead_of_wedging(tmp_path):
    """A cell whose execution always crashes the worker side: after
    max_attempts it is parked with its traceback and the job fails promptly
    (no infinite retry), with the quarantine journaled durably."""

    def crashing_execute(payload):
        raise RuntimeError("synthetic cell crash")

    handle = _start_service(tmp_path, max_attempts=2)
    worker = None
    try:
        worker = ChaosWorker(
            handle.base_url, "crasher", backoff_seed=7, execute=crashing_execute
        ).start()
        client = ServiceClient(handle.base_url)
        job_id = client.submit(SWEEP_DOC)["id"]
        final = client.wait(job_id, deadline=time.monotonic() + 120.0)
        assert final["state"] == "failed"
        assert "quarantined" in (final.get("error") or "")
        summary = client.job(job_id)
        assert summary.get("quarantined"), summary
        cell_id, cause = next(iter(summary["quarantined"].items()))
        assert "synthetic cell crash" in cause
        assert summary["attempts"][cell_id] == 2
        # Durable: a replay reconstructs the quarantine and attempt counts.
        records = replay_journal(tmp_path / "state" / "journal.jsonl")
        record = next(r for r in records if r.id == job_id)
        assert cell_id in record.quarantined
        assert record.attempts[cell_id] == 2
    finally:
        if worker is not None:
            worker.stop()
        handle.stop()
