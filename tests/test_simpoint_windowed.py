"""SimPoint sampling determinism and windowed execution with weighted stats."""

import random

import pytest

from repro.simulation.simulator import (
    SimPointRunResult,
    run_simpoints,
    run_variant,
)
from repro.workloads.generators import multi_slice_kernel, strided_stream
from repro.workloads.simpoint import SimPointSampler, sample_trace
from repro.workloads.source import GeneratorSource, MaterializedTrace


def profile_trace():
    return multi_slice_kernel(num_uops=6_000, num_slices=4, work_per_iteration=16)


class TestSamplerDeterminism:
    """Satellite: clustering is deterministic regardless of caller RNG state."""

    def test_global_random_state_does_not_affect_selection(self):
        trace = profile_trace()
        random.seed(12345)
        first = SimPointSampler(interval_size=500, max_clusters=3, seed=1).select(trace)
        random.seed(99999)
        random.random()  # churn the global generator between calls
        second = SimPointSampler(interval_size=500, max_clusters=3, seed=1).select(trace)
        assert first == second

    def test_global_random_state_is_not_consumed(self):
        trace = profile_trace()
        random.seed(777)
        expected_next = random.random()
        random.seed(777)
        SimPointSampler(interval_size=500, max_clusters=3, seed=1).select(trace)
        assert random.random() == expected_next

    def test_explicit_rng_injection(self):
        trace = profile_trace()
        one = SimPointSampler(
            interval_size=500, max_clusters=3, rng=random.Random(42)
        ).select(trace)
        two = SimPointSampler(
            interval_size=500, max_clusters=3, rng=random.Random(42)
        ).select(trace)
        assert one == two

    def test_every_seed_is_individually_deterministic(self):
        trace = profile_trace()
        for seed in range(4):
            first = SimPointSampler(interval_size=500, max_clusters=3, seed=seed).select(trace)
            again = SimPointSampler(interval_size=500, max_clusters=3, seed=seed).select(trace)
            assert first == again

    def test_sample_trace_still_shrinks(self):
        trace = profile_trace()
        sampled = sample_trace(trace, interval_size=500, max_clusters=2)
        assert 0 < len(sampled) < len(trace)


class TestSelectSource:
    def test_streaming_selection_matches_materialized(self):
        trace = profile_trace()
        sampler = SimPointSampler(interval_size=500, max_clusters=3, seed=1)
        eager = sampler.select(trace)
        source = GeneratorSource(
            multi_slice_kernel.stream,
            {"num_uops": 6_000, "num_slices": 4, "work_per_iteration": 16},
        )
        streamed, total = sampler.select_source(source)
        assert streamed == eager
        assert total == len(trace)

    def test_weights_sum_to_one(self):
        intervals, _ = SimPointSampler(interval_size=500, max_clusters=3).select_source(
            MaterializedTrace(profile_trace())
        )
        assert sum(i.weight for i in intervals) == pytest.approx(1.0)

    def test_empty_stream(self):
        intervals, total = SimPointSampler().select_source(
            GeneratorSource(lambda: iter(()), {})
        )
        assert intervals == []
        assert total == 0


class TestWindowedExecution:
    def test_simpoint_run_executes_fewer_uops_with_whole_trace_stats(self):
        trace = profile_trace()
        result = run_simpoints(
            trace, variant="ooo", interval_size=1_000, max_clusters=2
        )
        assert isinstance(result, SimPointRunResult)
        assert result.total_uops == len(trace)
        # Strictly fewer micro-ops executed than the full run...
        assert 0 < result.simulated_uops < result.total_uops
        assert sum(e.result.stats.committed_uops for e in result.intervals) == (
            result.simulated_uops
        )
        # ...while the weighted stats cover the whole trace.
        assert result.weighted_stats.committed_uops == result.total_uops
        assert result.weighted_stats.cycles > 0
        assert result.weighted_ipc > 0
        assert result.sampling_fraction < 1.0

    def test_weighted_ipc_tracks_full_run(self):
        trace = strided_stream(num_uops=12_000)
        windowed = run_simpoints(
            trace, variant="ooo", interval_size=2_000, max_clusters=3
        )
        full = run_variant(trace, variant="ooo")
        # The stream is highly regular, so the weighted estimate must land
        # near the full-run IPC (generous band: sampling skips warm-up).
        assert windowed.weighted_ipc == pytest.approx(full.ipc, rel=0.25)

    def test_probe_names_give_fresh_per_interval_reports(self):
        result = run_simpoints(
            profile_trace(),
            variant="ooo",
            interval_size=1_000,
            max_clusters=2,
            probes=["stall_breakdown"],
        )
        assert len(result.intervals) >= 2
        for entry in result.intervals:
            report = entry.result.probe_reports["stall_breakdown"]
            # Fresh probe per window: each report accounts exactly its own
            # interval's cycles, never accumulated earlier windows.
            assert sum(report["cycles"].values()) == entry.result.stats.cycles

    def test_probe_instances_rejected_to_prevent_accumulation(self):
        from repro.uarch.probes import StallBreakdownProbe

        with pytest.raises(TypeError, match="registry names"):
            run_simpoints(
                profile_trace(), variant="ooo", probes=[StallBreakdownProbe()]
            )

    def test_simpoint_result_serde_round_trip(self):
        result = run_simpoints(
            profile_trace(), variant="ooo", interval_size=1_000, max_clusters=2
        )
        restored = SimPointRunResult.from_dict(result.to_dict())
        assert restored.to_dict() == result.to_dict()
        assert restored.weighted_ipc == result.weighted_ipc


class TestLargeStreamAcceptance:
    """Acceptance: SimPoint-windowed run of a 10x-seed-size streaming trace."""

    def test_windowed_run_over_large_generator_source(self):
        num_uops = 200_000  # >= 10x the largest (20k) seed workload
        source = GeneratorSource(
            strided_stream.stream, {"num_uops": num_uops}, name="big_stream"
        )
        result = run_simpoints(
            source,
            variant="pre",
            interval_size=10_000,
            max_clusters=3,
        )
        assert result.total_uops >= num_uops
        assert result.simulated_uops < result.total_uops
        assert result.weighted_stats.committed_uops == result.total_uops
        assert result.weighted_ipc > 0
        # Windowed execution samples a small fraction of the stream.
        assert result.sampling_fraction <= 0.5
