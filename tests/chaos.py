"""Deterministic fault injection for the fleet: the chaos harness.

Two injection surfaces, both **counter-triggered** (never clock- or
random-triggered) so every chaos test replays identically:

* **Worker side** — :class:`FaultyClient` wraps a real
  :class:`~repro.service.client.ServiceClient` and raises
  :class:`WorkerKilled` at a scripted point:

  - ``kill_after_claim=k``: the k-th *non-empty* claim succeeds on the
    server (the lease exists, cells are assigned) and then the worker
    "dies" — exactly what SIGKILL between claim and execute looks like;
  - ``kill_before_complete=k``: the k-th batch is fully executed but the
    completion never leaves the worker — SIGKILL after compute, before
    delivery, proving re-execution doesn't double-write the cache.

  ``WorkerKilled`` subclasses ``BaseException`` so no ``except Exception``
  in the worker loop can absorb it, and once dead the client raises
  ``ConnectionError`` forever — including for the deregister in the worker's
  ``finally`` — so the daemon only ever finds out via lease expiry, like a
  real kill.  :class:`ChaosWorker` runs the whole loop on a thread and
  records whether it exited or died.

* **Server side** — :class:`FaultPlan` plugs into
  ``ExperimentService(fault_plan=...)``:

  - ``requests=[{"method", "path_contains", "skip", "times", "action"}]``
    is consulted per HTTP request; actions are ``("drop",)`` (connection
    dies before the daemon acts), ``("drop-after",)`` (the daemon acts but
    the client never hears — the duplicate-delivery trap), ``("delay", s)``
    and ``("error", status)``;
  - ``expire_leases={"L000001"}`` forces named leases to expire at the next
    sweep regardless of deadline (lease ids are sequential per daemon, so
    "the first lease" is addressable deterministically).

The real-process variant of all this — ``kill -9`` on actual ``repro work``
processes — runs in CI's ``fleet-smoke`` job; these in-process fixtures are
what make the failure *timing* reproducible enough for digest assertions.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.service.client import ServiceClient
from repro.service.worker import FleetWorker


class WorkerKilled(BaseException):
    """Simulated SIGKILL: tears the worker down through any ``except``."""


class FaultyClient:
    """A ServiceClient proxy that dies on cue and stays dead."""

    def __init__(
        self,
        inner: ServiceClient,
        kill_after_claim: Optional[int] = None,
        kill_before_complete: Optional[int] = None,
    ) -> None:
        self._inner = inner
        self._kill_after_claim = kill_after_claim
        self._kill_before_complete = kill_before_complete
        self._claims_with_cells = 0
        self._completes = 0
        self.dead = False

    def __getattr__(self, name: str) -> Any:
        if self.dead:
            raise ConnectionError("worker process is dead")
        return getattr(self._inner, name)

    def worker_claim(self, worker_id: str, max_cells: int = 1) -> Dict[str, Any]:
        if self.dead:
            raise ConnectionError("worker process is dead")
        grant = self._inner.worker_claim(worker_id, max_cells)
        if grant.get("cells"):
            self._claims_with_cells += 1
            if self._claims_with_cells == self._kill_after_claim:
                self.dead = True
                raise WorkerKilled(f"killed after claim #{self._claims_with_cells}")
        return grant

    def worker_complete(
        self, worker_id: str, lease_id: str, outcomes: list
    ) -> Dict[str, Any]:
        if self.dead:
            raise ConnectionError("worker process is dead")
        self._completes += 1
        if self._completes == self._kill_before_complete:
            self.dead = True
            raise WorkerKilled(f"killed before complete #{self._completes}")
        return self._inner.worker_complete(worker_id, lease_id, outcomes)


class ChaosWorker:
    """A FleetWorker on a thread, with an optional scripted death."""

    def __init__(
        self,
        base_url: str,
        name: str,
        kill_after_claim: Optional[int] = None,
        kill_before_complete: Optional[int] = None,
        max_cells: int = 1,
        poll_interval: float = 0.05,
        backoff_seed: int = 0,
        execute: Optional[Callable[[Dict[str, Any]], Dict[str, Any]]] = None,
    ) -> None:
        self.client = FaultyClient(
            ServiceClient(base_url, timeout=30.0, backoff_seed=backoff_seed),
            kill_after_claim=kill_after_claim,
            kill_before_complete=kill_before_complete,
        )
        kwargs: Dict[str, Any] = {}
        if execute is not None:
            kwargs["execute"] = execute
        self.worker = FleetWorker(
            base_url,
            name=name,
            client=self.client,
            max_cells=max_cells,
            poll_interval=poll_interval,
            backoff_seed=backoff_seed,
            **kwargs,
        )
        self.exit_code: Optional[int] = None
        self.killed = False
        self._thread = threading.Thread(target=self._run, daemon=True, name=name)

    def start(self) -> "ChaosWorker":
        self._thread.start()
        return self

    def _run(self) -> None:
        try:
            self.exit_code = self.worker.run()
        except WorkerKilled:
            self.killed = True

    def stop(self, timeout: float = 30.0) -> None:
        self.worker.request_stop()
        self._thread.join(timeout=timeout)

    def join(self, timeout: float = 30.0) -> None:
        self._thread.join(timeout=timeout)

    @property
    def alive(self) -> bool:
        return self._thread.is_alive()


class FaultPlan:
    """Server-side deterministic fault schedule (``fault_plan=`` hook)."""

    def __init__(
        self,
        requests: Sequence[Dict[str, Any]] = (),
        expire_leases: Sequence[str] = (),
    ) -> None:
        self._rules = [dict(rule) for rule in requests]
        self.expire_leases = set(expire_leases)
        #: Every fault actually fired, in order — assert on this.
        self.log: List[Tuple[Any, ...]] = []
        self._lock = threading.Lock()

    def on_request(
        self, method: str, path: str
    ) -> Optional[Tuple[Any, ...]]:
        with self._lock:
            for rule in self._rules:
                if rule.get("method") not in (None, method):
                    continue
                if rule.get("path_contains", "") not in path:
                    continue
                if rule.get("skip", 0) > 0:
                    rule["skip"] -= 1
                    return None
                if rule.get("times", 1) <= 0:
                    continue
                rule["times"] = rule.get("times", 1) - 1
                action = tuple(rule["action"])
                self.log.append((method, path) + action)
                return action
        return None

    def expire_lease(self, lease_id: str, worker_id: str) -> bool:
        with self._lock:
            if lease_id in self.expire_leases:
                self.expire_leases.discard(lease_id)
                self.log.append(("expire", lease_id, worker_id))
                return True
        return False


# ------------------------------------------------------------------ helpers


def sweep_digests(result_doc: Dict[str, Any]) -> Dict[Tuple[str, str, str], str]:
    """Per-cell stats digests of a sweep result document.

    Keyed ``(overrides-json, benchmark, variant)`` so multi-cell sweeps and
    plain grids share one shape; the digest is over the canonical JSON of
    the cell's CoreStats dict, i.e. bit-identity of every counter.
    """
    digests: Dict[Tuple[str, str, str], str] = {}
    for cell in result_doc["cells"]:
        overrides = json.dumps(cell.get("overrides", {}), sort_keys=True)
        for bench in cell["comparison"]["benchmarks"]:
            for variant, entry in bench["results"].items():
                blob = json.dumps(entry["stats"], sort_keys=True).encode()
                key = (overrides, bench["benchmark"], variant)
                digests[key] = hashlib.sha256(blob).hexdigest()
    return digests


def wait_until(
    predicate: Callable[[], bool], timeout: float = 30.0, interval: float = 0.02
) -> bool:
    """Poll ``predicate`` until true or ``timeout``; returns the last value."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()
