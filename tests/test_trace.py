"""Unit tests for the micro-op and trace substrate."""

import pytest

from repro.workloads.trace import (
    FP_REG_BASE,
    NUM_ARCH_REGS,
    MicroOp,
    Trace,
    TraceBuilder,
    UopClass,
    is_fp_reg,
)


class TestMicroOp:
    def test_load_requires_address(self):
        with pytest.raises(ValueError):
            MicroOp(pc=0x400000, uop_class=UopClass.LOAD, srcs=(1,), dst=2)

    def test_store_requires_address(self):
        with pytest.raises(ValueError):
            MicroOp(pc=0x400000, uop_class=UopClass.STORE, srcs=(1,))

    def test_alu_must_not_carry_address(self):
        with pytest.raises(ValueError):
            MicroOp(pc=0x400000, uop_class=UopClass.IALU, dst=1, mem_addr=64)

    def test_store_has_no_destination(self):
        with pytest.raises(ValueError):
            MicroOp(pc=0x400000, uop_class=UopClass.STORE, srcs=(1,), dst=2, mem_addr=64)

    def test_branch_has_no_destination(self):
        with pytest.raises(ValueError):
            MicroOp(pc=0x400000, uop_class=UopClass.BRANCH, dst=1)

    def test_register_range_validated(self):
        with pytest.raises(ValueError):
            MicroOp(pc=0x400000, uop_class=UopClass.IALU, srcs=(NUM_ARCH_REGS,), dst=1)
        with pytest.raises(ValueError):
            MicroOp(pc=0x400000, uop_class=UopClass.IALU, dst=NUM_ARCH_REGS)

    def test_mem_size_positive(self):
        with pytest.raises(ValueError):
            MicroOp(pc=0, uop_class=UopClass.LOAD, dst=1, mem_addr=0, mem_size=0)

    def test_classification_properties(self):
        load = MicroOp(pc=4, uop_class=UopClass.LOAD, dst=1, mem_addr=128)
        store = MicroOp(pc=8, uop_class=UopClass.STORE, srcs=(1,), mem_addr=128)
        branch = MicroOp(pc=12, uop_class=UopClass.BRANCH, branch_taken=True, branch_target=4)
        falu = MicroOp(pc=16, uop_class=UopClass.FALU, dst=FP_REG_BASE)
        assert load.is_load and load.is_memory and not load.is_store
        assert store.is_store and store.is_memory
        assert branch.is_branch and not branch.is_memory
        assert falu.uop_class.is_fp and falu.writes_fp and not falu.writes_int
        assert load.writes_int

    def test_is_fp_reg_split(self):
        assert not is_fp_reg(0)
        assert not is_fp_reg(FP_REG_BASE - 1)
        assert is_fp_reg(FP_REG_BASE)
        assert is_fp_reg(NUM_ARCH_REGS - 1)


class TestTrace:
    def _simple_trace(self):
        builder = TraceBuilder(name="simple")
        pc_a = builder.new_pc()
        pc_l = builder.new_pc()
        pc_s = builder.new_pc()
        pc_b = builder.new_pc()
        for i in range(10):
            builder.ialu(pc_a, dst=1, srcs=(1,))
            builder.load(pc_l, dst=2, addr=64 * i, srcs=(1,))
            builder.store(pc_s, addr=4096 + 64 * i, srcs=(2,))
            builder.branch(pc_b, taken=True, target=pc_a, srcs=(1,))
        return builder.build()

    def test_length_and_iteration(self):
        trace = self._simple_trace()
        assert len(trace) == 40
        assert sum(1 for _ in trace) == 40

    def test_stats_composition(self):
        stats = self._simple_trace().stats()
        assert stats.num_uops == 40
        assert stats.num_loads == 10
        assert stats.num_stores == 10
        assert stats.num_branches == 10
        assert stats.num_int_ops == 10
        assert stats.unique_pcs == 4
        assert stats.unique_load_pcs == 1
        assert 0 < stats.load_fraction < 1
        assert stats.memory_fraction == pytest.approx(0.5)
        assert stats.footprint_bytes == 20 * 64

    def test_slicing_returns_trace(self):
        trace = self._simple_trace()
        head = trace[:8]
        assert isinstance(head, Trace)
        assert len(head) == 8
        assert head[0].pc == trace[0].pc

    def test_repeat_and_concat(self):
        trace = self._simple_trace()
        doubled = trace.repeat(2)
        assert len(doubled) == 80
        joined = trace.concat(trace)
        assert len(joined) == 80
        with pytest.raises(ValueError):
            trace.repeat(-1)

    def test_load_addresses_in_order(self):
        trace = self._simple_trace()
        addresses = trace.load_addresses()
        assert addresses == [64 * i for i in range(10)]

    def test_pcs_of_class(self):
        trace = self._simple_trace()
        assert len(trace.pcs_of_class(UopClass.LOAD)) == 1
        assert len(trace.pcs_of_class(UopClass.IALU)) == 1

    def test_empty_trace_stats(self):
        stats = Trace([]).stats()
        assert stats.num_uops == 0
        assert stats.load_fraction == 0.0
        assert stats.memory_fraction == 0.0


class TestTraceBuilder:
    def test_pcs_are_unique_and_increasing(self):
        builder = TraceBuilder()
        pcs = [builder.new_pc() for _ in range(16)]
        assert len(set(pcs)) == 16
        assert pcs == sorted(pcs)

    def test_builder_emits_in_program_order(self):
        builder = TraceBuilder(name="order")
        pc = builder.new_pc()
        first = builder.ialu(pc, dst=1)
        second = builder.falu(builder.new_pc(), dst=FP_REG_BASE)
        trace = builder.build()
        assert trace[0] is first
        assert trace[1] is second
