"""Unit tests for the ``repro lint`` rules, engine and baseline mechanism."""

import json
import keyword
import random
import string
from dataclasses import make_dataclass
from pathlib import Path
from typing import List, Optional

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.lint import (
    Baseline,
    LintEngine,
    ModuleInfo,
    RepoIndex,
    write_baseline,
)
from repro.analysis.lint.rules.determinism import DeterminismRule
from repro.analysis.lint.rules.exit_codes import ExitCodeRule
from repro.analysis.lint.rules.hotpath import HotPathRule
from repro.analysis.lint.rules.privacy import PrivacyRule
from repro.analysis.lint.rules.probe_dispatch import ProbeDispatchRule
from repro.analysis.lint.rules.schema_drift import CacheSchemaRule
from repro.analysis.lint.rules.swallow import SwallowRule
from repro.analysis.lint.schema import (
    GOLDEN_RELPATH,
    current_record,
    fingerprint,
    structure_of,
)
from repro.errors import BadSpecError


def _index(*modules: ModuleInfo, root: Path = Path("/nonexistent")) -> RepoIndex:
    return RepoIndex(root=root, modules=list(modules))


def _module(source: str, module: str) -> ModuleInfo:
    return ModuleInfo.from_source(source, module=module)


def _codes(findings) -> List[str]:
    return sorted(f.code for f in findings)


def run_module_rule(rule, source: str, module: str, extra=()):
    info = _module(source, module)
    index = _index(info, *extra)
    return list(rule.check_module(info, index))


# --------------------------------------------------------------- determinism


class TestDeterminismRule:
    def test_flags_the_nondeterminism_menagerie(self):
        source = """\
import os, random, time

def bad():
    random.seed(0)
    random.shuffle([1, 2])
    r = random.Random()
    t = time.time()
    m = time.monotonic_ns()
    e = os.urandom(8)
    xs = sorted([1, 2], key=id)
    ys = list({3, 1, 2})
    for x in {1, 2}:
        pass
    return r, t, m, e, xs, ys
"""
        findings = run_module_rule(DeterminismRule(), source, "repro.uarch.scratch")
        assert _codes(findings) == [
            "D101",  # random.seed
            "D101",  # random.shuffle
            "D101",  # unseeded random.Random()
            "D103",  # time.time
            "D103",  # time.monotonic_ns
            "D104",  # os.urandom
            "D105",  # key=id
            "D106",  # list(set literal)
            "D106",  # for over set literal
        ]
        by_detail = {f.detail for f in findings}
        assert "random.Random" in by_detail and "time.time" in by_detail

    def test_from_imports_flagged(self):
        source = "from random import shuffle\nfrom time import monotonic\n"
        findings = run_module_rule(DeterminismRule(), source, "repro.core.scratch")
        assert _codes(findings) == ["D102", "D103"]

    def test_sanctioned_patterns_are_clean(self):
        source = """\
import random, time

def good(seed):
    rng = random.Random(seed)
    dt = time.perf_counter()
    order = sorted({1, 2, 3})
    from random import Random
    return rng, dt, order, Random
"""
        assert run_module_rule(DeterminismRule(), source, "repro.workloads.gen") == []

    def test_only_deterministic_packages_are_checked(self):
        source = "import time\nt = time.time()\n"
        assert run_module_rule(DeterminismRule(), source, "repro.service.clock") == []
        assert run_module_rule(DeterminismRule(), source, "repro.uarch.clock") != []


# ------------------------------------------------------------------ hot path


class TestHotPathRule:
    def test_missing_slots_flagged_in_hot_packages_only(self):
        source = "class Buffer:\n    def __init__(self):\n        self.x = 1\n"
        assert _codes(run_module_rule(HotPathRule(), source, "repro.uarch.buf")) == [
            "H301"
        ]
        assert run_module_rule(HotPathRule(), source, "repro.service.buf") == []

    def test_slots_dataclass_enum_exception_and_foreign_base_exempt(self):
        source = """\
from dataclasses import dataclass
from enum import Enum

class Slotted:
    __slots__ = ("x",)

@dataclass(frozen=True)
class Config:
    x: int = 0

class Mode(Enum):
    A = 1

class BufError(ValueError):
    pass

class FromElsewhere(SomeForeignBase):
    pass
"""
        assert run_module_rule(HotPathRule(), source, "repro.memory.kinds") == []

    def test_derived_config_read_outside_init_flagged(self):
        source = """\
class Cache:
    __slots__ = ("config", "_num_sets")

    def __init__(self, config):
        self.config = config
        self._num_sets = config.num_sets

    def fill(self, addr):
        return addr % self.config.num_sets
"""
        findings = run_module_rule(HotPathRule(), source, "repro.memory.scratch")
        assert _codes(findings) == ["H302"]
        assert findings[0].symbol == "Cache.fill"
        assert findings[0].detail == "config.num_sets"

    def test_plain_field_reads_are_not_flagged(self):
        source = """\
class Cache:
    __slots__ = ("config",)

    def __init__(self, config):
        self.config = config

    def fill(self, addr):
        return addr % self.config.associativity
"""
        assert run_module_rule(HotPathRule(), source, "repro.memory.scratch") == []


# ---------------------------------------------------------------- exit codes


class TestExitCodeRule:
    def test_raw_literals_flagged(self):
        source = """\
import sys

def a():
    sys.exit(1)

def b():
    raise SystemExit(3)

def c():
    raise SystemExit("boom")
"""
        findings = run_module_rule(ExitCodeRule(), source, "repro.tools.cli")
        assert _codes(findings) == ["T401", "T401", "T402"]

    def test_constants_and_computed_statuses_are_clean(self):
        source = """\
import sys
from repro.errors import EXIT_BAD_SPEC

def a():
    sys.exit(EXIT_BAD_SPEC)

def b():
    sys.exit(0)

def c():
    raise SystemExit(main())
"""
        assert run_module_rule(ExitCodeRule(), source, "repro.tools.cli") == []

    def test_errors_module_itself_is_exempt(self):
        source = "import sys\nsys.exit(4)\n"
        assert run_module_rule(ExitCodeRule(), source, "repro.errors") == []


# ------------------------------------------------------------------- privacy


class TestPrivacyRule:
    def test_cross_package_attribute_reach_through_flagged(self):
        owner = _module(
            "class Core:\n    def __init__(self):\n        self._entries = []\n",
            "repro.uarch.core",
        )
        accessor = _module(
            "def peek(core):\n    return core._entries\n", "repro.core.ctrl"
        )
        findings = list(
            PrivacyRule().check_module(accessor, _index(owner, accessor))
        )
        assert _codes(findings) == ["A501"]
        assert findings[0].detail == "_entries"

    def test_same_package_private_access_allowed(self):
        owner = _module(
            "class Core:\n    def __init__(self):\n        self._entries = []\n",
            "repro.uarch.core",
        )
        sibling = _module(
            "def peek(core):\n    return core._entries\n", "repro.uarch.debug"
        )
        assert list(PrivacyRule().check_module(sibling, _index(owner, sibling))) == []

    def test_self_and_cls_access_always_allowed(self):
        info = _module(
            "class A:\n    def m(self):\n        return self._hidden\n",
            "repro.core.a",
        )
        assert list(PrivacyRule().check_module(info, _index(info))) == []

    def test_cross_package_private_import_flagged(self):
        info = _module(
            "from repro.uarch.core import _helper\n", "repro.core.ctrl"
        )
        findings = list(PrivacyRule().check_module(info, _index(info)))
        assert _codes(findings) == ["A502"]

    def test_same_package_private_import_allowed(self):
        info = _module(
            "from repro.uarch.core import _helper\n", "repro.uarch.debug"
        )
        assert list(PrivacyRule().check_module(info, _index(info))) == []


# ------------------------------------------------------------ probe dispatch


_PROBES_SRC = """\
_HOOKS = ("on_cycle", "on_retire")

class Probe:
    def on_attach(self, core):
        pass

    def on_cycle(self, cycle):
        pass

    def on_retire(self, instr):
        pass

    def on_orphan(self, x):
        pass
"""


class TestProbeDispatchRule:
    def test_undeclared_and_undispatched_hooks_flagged(self):
        probes = _module(_PROBES_SRC, "repro.uarch.probes")
        core = _module(
            "def tick(probes):\n    probes.on_cycle(0)\n", "repro.uarch.core"
        )
        findings = list(ProbeDispatchRule().check_repo(_index(probes, core)))
        assert _codes(findings) == ["P601", "P602"]
        p601 = next(f for f in findings if f.code == "P601")
        assert p601.detail == "on_orphan"
        p602 = next(f for f in findings if f.code == "P602")
        assert p602.detail == "on_retire"

    def test_fully_wired_hooks_are_clean(self):
        probes = _module(_PROBES_SRC.replace("    def on_orphan(self, x):\n        pass\n", ""), "repro.uarch.probes")
        core = _module(
            "def tick(probes):\n"
            "    probes.on_cycle(0)\n"
            "    probes.on_retire(None)\n",
            "repro.uarch.core",
        )
        assert list(ProbeDispatchRule().check_repo(_index(probes, core))) == []

    def test_absent_probe_module_is_a_noop(self):
        assert list(ProbeDispatchRule().check_repo(_index())) == []


# ------------------------------------------------------------------- swallow


class TestSwallowRule:
    def test_silent_broad_catches_flagged_in_service_package(self):
        source = """\
def a():
    try:
        work()
    except Exception:
        pass

def b():
    try:
        work()
    except:
        ...

def c():
    try:
        work()
    except (OSError, BaseException):
        pass
"""
        findings = run_module_rule(
            SwallowRule(), source, "repro.service.server"
        )
        assert _codes(findings) == ["W701", "W701", "W701"]
        assert {f.symbol for f in findings} == {"a", "b", "c"}

    def test_handlers_that_record_or_narrow_are_clean(self):
        source = """\
def logged(log):
    try:
        work()
    except Exception as exc:
        log(exc)

def narrow():
    try:
        work()
    except OSError:
        pass

def reraised():
    try:
        work()
    except BaseException:
        raise
"""
        assert run_module_rule(SwallowRule(), source, "repro.service.fleet") == []

    def test_other_packages_are_out_of_scope(self):
        source = "def f():\n    try:\n        g()\n    except Exception:\n        pass\n"
        assert run_module_rule(SwallowRule(), source, "repro.simulation.engine") == []

    def test_live_service_package_has_no_silent_swallows(self):
        root = Path(__file__).resolve().parent.parent
        index = RepoIndex.load(root)
        rule = SwallowRule()
        findings = [
            finding
            for module in index.modules
            if module.module.startswith("repro.service")
            for finding in rule.check_module(module, index)
        ]
        assert findings == []


# -------------------------------------------------------------- cache schema


class TestCacheSchemaRule:
    def _run(self, tmp_path: Path, golden: Optional[dict]) -> List[str]:
        if golden is not None:
            path = tmp_path / GOLDEN_RELPATH
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(json.dumps(golden))
        return _codes(CacheSchemaRule().check_repo(_index(root=tmp_path)))

    def test_missing_golden_flagged(self, tmp_path):
        assert self._run(tmp_path, None) == ["S203"]

    def test_matching_golden_is_clean(self, tmp_path):
        assert self._run(tmp_path, current_record()) == []

    def test_drift_without_version_bump_flagged(self, tmp_path):
        record = current_record()
        tampered = dict(record, fingerprint="0" * 64)
        classes = {k: dict(v) for k, v in record["classes"].items()}
        some_class = sorted(classes)[0]
        classes[some_class]["ghost_field"] = "int"
        tampered["classes"] = classes
        codes = self._run(tmp_path, tampered)
        assert codes == ["S201"]

    def test_version_bump_with_stale_golden_flagged(self, tmp_path):
        record = current_record()
        stale = dict(
            record,
            cache_schema_version=record["cache_schema_version"] - 1,
            fingerprint="0" * 64,
        )
        assert self._run(tmp_path, stale) == ["S202"]

    def test_defensive_version_bump_without_drift_is_clean(self, tmp_path):
        record = current_record()
        bumped = dict(
            record, cache_schema_version=record["cache_schema_version"] - 1
        )
        assert self._run(tmp_path, bumped) == []


# ------------------------------------------------- fingerprint property tests


_FIELD_NAMES = st.lists(
    st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8).filter(
        lambda name: not keyword.iskeyword(name)
    ),
    min_size=1,
    max_size=6,
    unique=True,
)
_TYPES = st.sampled_from([int, float, str, bool, bytes])


class TestFingerprintProperties:
    @given(names=_FIELD_NAMES, seed=st.integers(0, 2**16), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_field_order_insensitive(self, names, seed, data):
        types = [data.draw(_TYPES) for _ in names]
        fields = list(zip(names, types))
        shuffled = fields[:]
        random.Random(seed).shuffle(shuffled)
        a = make_dataclass("A", fields)
        b = make_dataclass("A", shuffled)
        assert structure_of(a) == structure_of(b)
        assert fingerprint({"A": structure_of(a)}) == fingerprint(
            {"A": structure_of(b)}
        )

    @given(names=_FIELD_NAMES, data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_add_remove_rename_retype_all_change_the_fingerprint(self, names, data):
        types = [data.draw(_TYPES) for _ in names]
        base = make_dataclass("A", list(zip(names, types)))
        reference = fingerprint({"A": structure_of(base)})

        added = make_dataclass("A", list(zip(names, types)) + [("zz_extra", int)])
        assert fingerprint({"A": structure_of(added)}) != reference

        if len(names) > 1:
            removed = make_dataclass("A", list(zip(names[:-1], types[:-1])))
            assert fingerprint({"A": structure_of(removed)}) != reference

        renamed_names = [names[0] + "_renamed"] + list(names[1:])
        renamed = make_dataclass("A", list(zip(renamed_names, types)))
        assert fingerprint({"A": structure_of(renamed)}) != reference

        new_type = complex if types[0] is not complex else int
        retyped = make_dataclass(
            "A", [(names[0], new_type)] + list(zip(names[1:], types[1:]))
        )
        assert fingerprint({"A": structure_of(retyped)}) != reference


# ---------------------------------------------------------- baseline machinery


class TestBaseline:
    def _finding(self, line=10):
        from repro.analysis.lint.findings import Finding

        return Finding(
            rule="determinism",
            code="D103",
            path="src/repro/uarch/x.py",
            line=line,
            col=4,
            symbol="X.tick",
            message="time.time() reads the wall clock",
            detail="time.time",
        )

    def test_key_is_stable_across_line_moves(self):
        assert self._finding(line=10).key == self._finding(line=99).key

    def test_roundtrip_and_partition(self, tmp_path):
        path = tmp_path / "baseline.json"
        old = self._finding(line=10)
        write_baseline([old], path)
        baseline = Baseline.load(path)
        moved = self._finding(line=42)
        new, suppressed = baseline.partition([moved])
        assert new == [] and suppressed == [moved]
        assert baseline.unused_keys([moved]) == []
        assert baseline.unused_keys([]) == [old.key]

    def test_unknown_findings_are_new(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline([self._finding()], path)
        baseline = Baseline.load(path)
        other = self._finding().__class__(
            rule="determinism",
            code="D104",
            path="src/repro/uarch/x.py",
            line=1,
            col=0,
            symbol="X.tick",
            message="entropy",
            detail="os.urandom",
        )
        new, suppressed = baseline.partition([other])
        assert new == [other] and suppressed == []


# -------------------------------------------------------------------- engine


class TestEngine:
    def test_unknown_rule_is_bad_spec(self):
        with pytest.raises(BadSpecError):
            LintEngine(_index(), rules=["nope"])

    def test_path_filter_restricts_reporting(self, tmp_path):
        (tmp_path / "src" / "repro" / "uarch").mkdir(parents=True)
        (tmp_path / "src" / "repro" / "__init__.py").write_text("")
        (tmp_path / "src" / "repro" / "uarch" / "__init__.py").write_text("")
        (tmp_path / "src" / "repro" / "uarch" / "a.py").write_text(
            "import time\nt = time.time()\n"
        )
        (tmp_path / "src" / "repro" / "uarch" / "b.py").write_text(
            "import time\nu = time.monotonic()\n"
        )
        index = RepoIndex.load(tmp_path)
        engine = LintEngine(index, rules=["determinism"])
        everything = engine.run().findings
        assert len(everything) == 2
        only_a = engine.run(
            paths=[tmp_path / "src" / "repro" / "uarch" / "a.py"]
        ).findings
        assert [f.path for f in only_a] == ["src/repro/uarch/a.py"]

    def test_syntax_error_is_bad_spec(self, tmp_path):
        (tmp_path / "src" / "repro").mkdir(parents=True)
        (tmp_path / "src" / "repro" / "broken.py").write_text("def f(:\n")
        with pytest.raises(BadSpecError):
            RepoIndex.load(tmp_path)
