"""Unit tests for the core's pipeline structures (RF, RAT, ROB, IQ, LSQ, branch, frontend)."""

import pytest

from repro.uarch.branch import GShareBranchPredictor
from repro.uarch.config import CoreConfig
from repro.uarch.core import DynInstr
from repro.uarch.frontend import FrontEnd
from repro.uarch.issue_queue import IssueQueue
from repro.uarch.lsq import LoadStoreQueues
from repro.uarch.regfile import OutOfPhysicalRegisters, PhysicalRegisterFile
from repro.uarch.rename import RegisterAliasTable, RetirementRAT
from repro.uarch.rob import ReorderBuffer
from repro.uarch.stats import CoreStats
from repro.workloads.generators import strided_stream
from repro.workloads.trace import FP_REG_BASE, MicroOp, UopClass


def make_instr(seq, uop_class=UopClass.IALU, pc=None, dst=1, srcs=(), addr=None):
    uop = MicroOp(
        pc=pc if pc is not None else 0x400000 + 4 * seq,
        uop_class=uop_class,
        srcs=srcs,
        dst=dst,
        mem_addr=addr,
    )
    return DynInstr(uop=uop, seq=seq)


class TestPhysicalRegisterFile:
    def test_initial_free_count(self):
        rf = PhysicalRegisterFile(168)
        assert rf.num_free == 168 - 32
        assert rf.free_fraction == pytest.approx((168 - 32) / 168)

    def test_allocate_free_cycle(self):
        rf = PhysicalRegisterFile(40)
        reg = rf.allocate()
        assert rf.is_allocated(reg)
        assert not rf.is_ready(reg)
        rf.set_ready(reg)
        assert rf.is_ready(reg)
        rf.free(reg)
        assert not rf.is_allocated(reg)

    def test_double_free_rejected(self):
        rf = PhysicalRegisterFile(40)
        reg = rf.allocate()
        rf.free(reg)
        with pytest.raises(ValueError):
            rf.free(reg)

    def test_exhaustion_raises(self):
        rf = PhysicalRegisterFile(34)
        rf.allocate()
        rf.allocate()
        with pytest.raises(OutOfPhysicalRegisters):
            rf.allocate()

    def test_rebuild_restores_free_list(self):
        rf = PhysicalRegisterFile(40)
        for _ in range(6):
            rf.allocate()
        rf.rebuild(set(range(32)))
        assert rf.num_free == 8
        assert all(rf.is_ready(reg) for reg in range(32))


class TestRAT:
    def test_initial_mapping_is_identity_per_bank(self):
        rat = RegisterAliasTable()
        assert rat.physical(0) == 0
        assert rat.physical(FP_REG_BASE) == 0
        assert rat.physical(FP_REG_BASE + 5) == 5

    def test_rename_records_producer_pc(self):
        rat = RegisterAliasTable()
        previous = rat.rename(3, physical=77, producer_pc=0x400010)
        assert previous.physical == 3
        assert rat.physical(3) == 77
        assert rat.producer_pc(3) == 0x400010

    def test_checkpoint_restore(self):
        rat = RegisterAliasTable()
        checkpoint = rat.checkpoint()
        rat.rename(1, 50, 0x1000)
        rat.rename(2, 51, 0x1004)
        rat.restore(checkpoint)
        assert rat.physical(1) == 1
        assert rat.physical(2) == 2
        assert rat.producer_pc(1) is None

    def test_live_physicals_by_bank(self):
        rat = RegisterAliasTable()
        rat.rename(0, 99, 0x0)
        assert 99 in rat.live_physicals(fp=False)
        assert 99 not in rat.live_physicals(fp=True)

    def test_retirement_rat_commit_and_checkpoint(self):
        retire = RetirementRAT()
        old = retire.commit(4, 88)
        assert old == 4
        assert retire.physical(4) == 88
        checkpoint = retire.to_checkpoint()
        assert checkpoint.entries[4].physical == 88


class TestROB:
    def test_fifo_order_and_capacity(self):
        rob = ReorderBuffer(capacity=4)
        for seq in range(4):
            rob.push(make_instr(seq))
        assert rob.is_full
        with pytest.raises(OverflowError):
            rob.push(make_instr(99))
        assert rob.pop_head().seq == 0
        assert len(rob) == 3

    def test_find_other_instance(self):
        rob = ReorderBuffer()
        rob.push(make_instr(0, pc=0x100))
        rob.push(make_instr(1, pc=0x200))
        rob.push(make_instr(2, pc=0x100))
        found = rob.find_other_instance(0x100, exclude_seq=0)
        assert found is not None and found.seq == 2
        assert rob.find_other_instance(0x300, exclude_seq=0) is None

    def test_entries_before_sorted_youngest_first(self):
        rob = ReorderBuffer()
        for seq in range(5):
            rob.push(make_instr(seq))
        older = rob.entries_before(3)
        assert [instr.seq for instr in older] == [2, 1, 0]

    def test_clear_returns_entries(self):
        rob = ReorderBuffer()
        rob.push(make_instr(0))
        discarded = rob.clear()
        assert len(discarded) == 1
        assert rob.is_empty


class TestIssueQueue:
    def test_select_oldest_first_with_width(self):
        iq = IssueQueue(capacity=8)
        for seq in (5, 1, 3):
            instr = make_instr(seq)
            instr.earliest_issue_cycle = 0
            iq.insert(instr)
        picked = iq.select_ready(0, width=2, is_ready=lambda i: True, max_loads=2, max_stores=1)
        assert [instr.seq for instr in picked] == [1, 3]

    def test_port_limits(self):
        iq = IssueQueue()
        for seq in range(4):
            instr = make_instr(seq, uop_class=UopClass.LOAD, addr=64 * seq, dst=1)
            instr.earliest_issue_cycle = 0
            iq.insert(instr)
        picked = iq.select_ready(0, width=4, is_ready=lambda i: True, max_loads=2, max_stores=1)
        assert len(picked) == 2

    def test_not_ready_filtered(self):
        iq = IssueQueue()
        instr = make_instr(0)
        instr.earliest_issue_cycle = 0
        iq.insert(instr)
        assert iq.select_ready(0, 4, lambda i: False, 2, 1) == []

    def test_earliest_issue_cycle_respected(self):
        iq = IssueQueue()
        instr = make_instr(0)
        instr.earliest_issue_cycle = 10
        iq.insert(instr)
        assert iq.select_ready(5, 4, lambda i: True, 2, 1) == []
        assert iq.select_ready(10, 4, lambda i: True, 2, 1) == [instr]

    def test_squash_predicate(self):
        iq = IssueQueue()
        normal = make_instr(0)
        runahead = make_instr(1)
        runahead.runahead = True
        iq.insert(normal)
        iq.insert(runahead)
        removed = iq.squash(lambda i: i.runahead)
        assert removed == [runahead]
        assert len(iq) == 1

    def test_overflow(self):
        iq = IssueQueue(capacity=1)
        iq.insert(make_instr(0))
        with pytest.raises(OverflowError):
            iq.insert(make_instr(1))


class TestLSQ:
    def test_occupancy_and_release(self):
        lsq = LoadStoreQueues(load_entries=2, store_entries=1)
        load = make_instr(0, UopClass.LOAD, addr=64, dst=1)
        store = make_instr(1, UopClass.STORE, addr=64, dst=None, srcs=(1,))
        lsq.dispatch(load)
        lsq.dispatch(store)
        assert lsq.load_occupancy == 1
        assert lsq.store_queue_full
        lsq.release(load)
        lsq.release(store)
        assert lsq.load_occupancy == 0

    def test_store_to_load_forwarding_youngest_older_store(self):
        lsq = LoadStoreQueues()
        store_a = make_instr(1, UopClass.STORE, addr=128, dst=None, srcs=(1,))
        store_b = make_instr(3, UopClass.STORE, addr=128, dst=None, srcs=(1,))
        load = make_instr(5, UopClass.LOAD, addr=128, dst=2)
        lsq.dispatch(store_a)
        lsq.dispatch(store_b)
        assert lsq.forwarding_store(load) is store_b
        younger_load = make_instr(2, UopClass.LOAD, addr=128, dst=2)
        assert lsq.forwarding_store(younger_load) is store_a

    def test_no_forwarding_for_different_address(self):
        lsq = LoadStoreQueues()
        lsq.dispatch(make_instr(1, UopClass.STORE, addr=256, dst=None, srcs=(1,)))
        load = make_instr(2, UopClass.LOAD, addr=512, dst=2)
        assert lsq.forwarding_store(load) is None


class TestBranchPredictor:
    def test_learns_always_taken(self):
        predictor = GShareBranchPredictor(table_entries=256, history_bits=8)
        pc = 0x400100
        for _ in range(8):
            prediction = predictor.predict(pc)
            predictor.update(pc, taken=True, predicted=prediction)
        assert predictor.predict(pc) is True
        assert predictor.stats.accuracy > 0.5

    def test_table_size_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            GShareBranchPredictor(table_entries=100)


class TestFrontEnd:
    def _frontend(self, num_uops=200):
        trace = strided_stream(num_uops=num_uops)
        config = CoreConfig()
        predictor = GShareBranchPredictor()
        return FrontEnd(trace, config, predictor, port=None, stats=CoreStats()), trace

    def test_delivers_after_pipeline_depth(self):
        frontend, _ = self._frontend()
        frontend.tick(0)
        assert len(frontend.uop_queue) == 0
        for cycle in range(1, CoreConfig().frontend_depth + 1):
            frontend.tick(cycle)
        assert len(frontend.uop_queue) > 0

    def test_pop_and_unpop_preserve_order(self):
        frontend, _ = self._frontend()
        for cycle in range(0, 20):
            frontend.tick(cycle)
        popped = frontend.pop_uops(3, 20)
        assert [entry.seq for entry in popped] == [0, 1, 2]
        frontend.unpop(popped)
        assert frontend.peek().seq == 0

    def test_redirect_flushes_and_restarts(self):
        frontend, _ = self._frontend()
        for cycle in range(0, 20):
            frontend.tick(cycle)
        frontend.redirect(5, cycle=20)
        assert len(frontend.uop_queue) == 0
        assert frontend.fetch_index == 5
        assert frontend.next_dispatch_seq() == 5

    def test_power_gating_stops_fetch(self):
        frontend, _ = self._frontend()
        frontend.power_gated = True
        moved = sum(frontend.tick(cycle) for cycle in range(10))
        assert moved == 0

    def test_trace_exhaustion(self):
        frontend, trace = self._frontend(num_uops=30)
        for cycle in range(200):
            frontend.tick(cycle)
            frontend.pop_uops(8, cycle)
        assert frontend.trace_exhausted
        assert frontend.is_drained
        assert frontend.next_dispatch_seq() is None
