"""Golden bit-identity regression suite.

The hot-path overhaul (``__slots__`` micro-ops/instructions, allocation-free
L1 hits, heap-expired MSHRs, batched trace decode, de-overheaded stage loops)
claims *bit-identical timing*.  This suite is the proof: the committed golden
file ``tests/goldens/golden_stats.json`` was captured with the
pre-optimization engine (see ``scripts/capture_goldens.py``), and every cell
of the default Figure-2 workload x variant matrix must still reproduce its
``CoreStats`` digest, IPC and normalized IPC exactly.

A second group pins the batched ``FileTraceSource`` decoder against both the
in-memory stream and the original per-record reference decoder.
"""

from __future__ import annotations

import gzip
from pathlib import Path

import pytest

from repro.registry import build_workload, build_workload_source
from repro.simulation.golden import (
    DEFAULT_GOLDEN_PATH,
    cell_key,
    compare_with_goldens,
    load_goldens,
    stats_digest,
)
from repro.uarch.stats import CoreStats
from repro.workloads.source import (
    FileTraceSource,
    _decode_uop,
    write_trace_file,
)
from repro.workloads.trace import MicroOp, Trace, UopClass

GOLDEN_FILE = Path(__file__).resolve().parent.parent / DEFAULT_GOLDEN_PATH


@pytest.fixture(scope="module")
def goldens():
    assert GOLDEN_FILE.exists(), (
        f"{GOLDEN_FILE} is missing; regenerate with "
        "`PYTHONPATH=src python scripts/capture_goldens.py` "
        "(only when the timing model intentionally changed)"
    )
    return load_goldens(GOLDEN_FILE)


class TestGoldenDigests:
    def test_golden_file_covers_the_full_matrix(self, goldens):
        expected = {
            cell_key(workload, variant)
            for workload in goldens["workloads"]
            for variant in goldens["variants"]
        }
        assert set(goldens["cells"]) == expected
        assert len(expected) == len(goldens["workloads"]) * len(goldens["variants"])
        for cell in goldens["cells"].values():
            assert len(cell["digest"]) == 64  # sha256 hex

    def test_optimized_engine_is_bit_identical_to_goldens(self, goldens):
        """The load-bearing assertion: every workload x variant reproduces the
        pre-optimization CoreStats digest and Figure-2 IPC values exactly."""
        mismatches = compare_with_goldens(goldens)
        assert mismatches == [], "timing diverged from committed goldens:\n" + "\n".join(
            mismatches
        )

    def test_digest_is_sensitive_to_any_counter(self):
        stats = CoreStats()
        base = stats_digest(stats)
        stats.cycles += 1
        assert stats_digest(stats) != base
        stats.cycles -= 1
        assert stats_digest(stats) == base
        stats.events.iq_wakeups += 1
        assert stats_digest(stats) != base


def _all_shapes_trace() -> Trace:
    return Trace(
        [
            MicroOp(pc=0x1000, uop_class=UopClass.IALU, srcs=(1, 2), dst=3),
            MicroOp(pc=0x1004, uop_class=UopClass.FMUL, srcs=(34, 35), dst=36),
            MicroOp(
                pc=0x1008, uop_class=UopClass.LOAD, srcs=(3,), dst=4,
                mem_addr=0xDEAD_BEEF_00, mem_size=16,
            ),
            MicroOp(
                pc=0x100C, uop_class=UopClass.STORE, srcs=(4,),
                mem_addr=0x2040, mem_size=4,
            ),
            MicroOp(
                pc=0x1010, uop_class=UopClass.BRANCH, srcs=(5,),
                branch_taken=True, branch_target=0x1000,
            ),
            MicroOp(pc=0x1014, uop_class=UopClass.BRANCH, branch_taken=False),
            MicroOp(pc=0x1018, uop_class=UopClass.NOP),
        ],
        name="shapes",
    )


class TestBatchedDecoderIdentity:
    def test_file_decode_matches_streaming_source(self, tmp_path):
        """A recorded workload replays byte-for-byte identical to its
        streaming generator source through the batched block decoder."""
        source = build_workload_source("milc", num_uops=900)
        path = tmp_path / "milc.trc"
        write_trace_file(path, source)
        assert list(FileTraceSource(path)) == list(source.open())

    def test_block_decoder_matches_reference_decoder(self, tmp_path):
        """The chunked ``unpack_from`` decoder and the original per-record
        ``_decode_uop`` reference produce identical micro-ops."""
        trace = _all_shapes_trace().repeat(50, name="shapes50")
        path = tmp_path / "shapes.trc"
        count = write_trace_file(path, trace)
        batched = list(FileTraceSource(path))
        with open(path, "rb") as handle:
            handle.readline(1 << 16)
            with gzip.GzipFile(fileobj=handle, mode="rb") as stream:
                reference = [_decode_uop(stream) for _ in range(count)]
        assert batched == reference == list(trace)

    def test_reopen_is_deterministic(self, tmp_path):
        path = tmp_path / "mcf.trc"
        write_trace_file(path, build_workload("mcf", num_uops=400))
        source = FileTraceSource(path)
        assert list(source) == list(source)
