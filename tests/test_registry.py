"""Registry layer: registration, lookup, errors, and extension points."""

import pytest

from repro.core import VARIANT_LABELS, VARIANTS, build_controller
from repro.core.base import RunaheadController
from repro.registry import (
    DuplicateRegistrationError,
    Registry,
    VARIANT_REGISTRY,
    WORKLOAD_REGISTRY,
    build_workload,
    register_variant,
    register_workload,
    variant_names,
    workload_names,
)
from repro.workloads.generators import compute_kernel
from repro.workloads.spec_surrogates import SPEC_SURROGATES, build_surrogate


class TestGenericRegistry:
    def test_register_and_create(self):
        registry = Registry("thing")

        @registry.register("double", label="x2", description="doubles input")
        def make(value):
            return value * 2

        assert "double" in registry
        assert registry.names() == ["double"]
        assert registry.create("double", 21) == 42
        entry = registry.get("double")
        assert entry.label == "x2"
        assert entry.description == "doubles input"

    def test_duplicate_registration_rejected(self):
        registry = Registry("thing")
        registry.register("a", lambda: 1)
        with pytest.raises(DuplicateRegistrationError):
            registry.register("a", lambda: 2)

    def test_duplicate_registration_with_replace(self):
        registry = Registry("thing")
        registry.register("a", lambda: 1)
        registry.register("a", lambda: 2, replace=True)
        assert registry.create("a") == 2

    def test_unknown_name_raises_keyerror_listing_names(self):
        registry = Registry("gizmo")
        registry.register("known", lambda: 1)
        with pytest.raises(KeyError, match="unknown gizmo 'missing'.*known"):
            registry.get("missing")

    def test_registration_order_preserved(self):
        registry = Registry("thing")
        for name in ("c", "a", "b"):
            registry.register(name, lambda: None)
        assert registry.names() == ["c", "a", "b"]

    def test_labels_view_is_live(self):
        registry = Registry("thing")
        labels = registry.labels_view()
        registry.register("late", lambda: None, label="Late")
        assert labels["late"] == "Late"
        with pytest.raises(TypeError):
            labels["late"] = "tampered"


class TestVariantRegistry:
    def test_builtin_variants_registered_in_figure_order(self):
        assert variant_names()[:5] == [
            "ooo",
            "runahead",
            "runahead_buffer",
            "pre",
            "pre_emq",
        ]
        assert tuple(variant_names()[:5]) == VARIANTS

    def test_variant_labels_match_paper(self):
        assert VARIANT_LABELS["ooo"] == "OoO"
        assert VARIANT_LABELS["pre_emq"] == "PRE+EMQ"

    def test_build_controller_unknown_variant(self):
        with pytest.raises(ValueError, match="unknown variant 'warp-drive'"):
            build_controller("warp-drive")

    def test_custom_variant_buildable_by_name(self):
        class NullController(RunaheadController):
            name = "null"

        @register_variant("test_null_variant", label="NULL", description="test only")
        def _build_null():
            return NullController()

        try:
            controller = build_controller("test_null_variant")
            assert isinstance(controller, NullController)
            assert VARIANT_LABELS["test_null_variant"] == "NULL"
        finally:
            VARIANT_REGISTRY.unregister("test_null_variant")
        assert "test_null_variant" not in VARIANT_REGISTRY


class TestWorkloadRegistry:
    def test_surrogates_registered(self):
        for name in SPEC_SURROGATES:
            assert name in WORKLOAD_REGISTRY
        assert set(SPEC_SURROGATES) <= set(workload_names())

    def test_build_workload_matches_build_surrogate(self):
        via_registry = build_workload("milc", num_uops=400)
        via_surrogate = build_surrogate("milc", num_uops=400)
        assert via_registry.name == via_surrogate.name == "milc"
        assert len(via_registry) == len(via_surrogate)

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError, match="unknown workload"):
            build_workload("not-a-benchmark")

    def test_custom_workload_buildable_by_name(self):
        @register_workload("test_tiny_kernel", description="test only")
        def _build_tiny(num_uops=200):
            trace = compute_kernel(num_uops=num_uops)
            trace.name = "test_tiny_kernel"
            return trace

        try:
            trace = build_workload("test_tiny_kernel", num_uops=100)
            assert trace.name == "test_tiny_kernel"
            assert len(trace) >= 100
            # build_surrogate reaches registered workloads too
            assert build_surrogate("test_tiny_kernel", num_uops=100).name == "test_tiny_kernel"
        finally:
            WORKLOAD_REGISTRY.unregister("test_tiny_kernel")

    def test_surrogate_entries_carry_cache_token(self):
        entry = WORKLOAD_REGISTRY.get("milc")
        token = entry.metadata["cache_token"]
        assert token["generator"] == "multi_slice_kernel"
        assert token["params"]["num_slices"] == 8
