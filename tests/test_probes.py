"""Instrumentation probe API: hooks, built-ins, registry and engine plumbing."""

import pytest

from repro.registry import PROBE_REGISTRY
from repro.simulation.engine import ExperimentEngine, SweepSpec, _job_cache_key, _job_payload
from repro.simulation.simulator import SimulationResult, run_variant
from repro.uarch.core import OoOCore
from repro.uarch.config import CoreConfig
from repro.uarch.probes import (
    IPCTimelineProbe,
    MemoryProfileProbe,
    Probe,
    ProbeSet,
    build_probe,
    default_probes,
)
from repro.core import build_controller
from repro.workloads.generators import strided_stream


class CountingProbe(Probe):
    name = "counting"

    def __init__(self):
        self.attached = 0
        self.cycles = 0
        self.commits = 0
        self.enters = 0
        self.exits = 0
        self.mem_accesses = 0
        self.stalls = 0
        self.finished = 0

    def on_attach(self, core):
        self.attached += 1

    def on_cycle(self, core, cycle):
        self.cycles += 1

    def on_commit(self, core, instr, cycle):
        self.commits += 1

    def on_runahead_enter(self, core, cycle):
        self.enters += 1

    def on_runahead_exit(self, core, cycle):
        self.exits += 1

    def on_mem_access(self, core, instr, result, cycle):
        self.mem_accesses += 1

    def on_full_window_stall(self, core, instr, cycle):
        self.stalls += 1

    def on_finish(self, core, stats):
        self.finished += 1

    def report(self):
        return {"commits": self.commits}


class TestProbeHooks:
    def test_counting_probe_sees_every_semantic_event(self):
        trace = strided_stream(num_uops=2_000)
        probe = CountingProbe()
        core = OoOCore(
            trace,
            controller=build_controller("pre"),
            probes=default_probes() + [probe],
        )
        stats = core.run()
        assert probe.attached == 1
        assert probe.finished == 1
        assert probe.commits == stats.committed_uops
        assert probe.cycles > 0
        assert probe.mem_accesses > 0
        assert probe.stalls == stats.full_window_stalls
        assert probe.enters == stats.runahead_invocations
        assert probe.exits == probe.enters

    def test_probeset_indexes_only_overridden_hooks(self):
        probe = CountingProbe()
        passive = Probe()
        probes = ProbeSet([probe, passive])
        assert probe in probes.commit
        assert passive not in probes.commit
        assert len(probes) == 2

    def test_stall_snapshots_relocated_to_default_probe(self):
        trace = strided_stream(num_uops=2_000)
        with_default = OoOCore(trace)
        stats_default = with_default.run()
        assert stats_default.stall_snapshots, "default probes collect snapshots"
        bare = OoOCore(strided_stream(num_uops=2_000), probes=[])
        stats_bare = bare.run()
        # A bare core skips the optional instrumentation but times identically.
        assert not stats_bare.stall_snapshots
        assert stats_bare.cycles == stats_default.cycles
        assert stats_bare.full_window_stalls == stats_default.full_window_stalls


class TestBuiltinProbes:
    def run_with(self, probe_names, variant="pre"):
        return run_variant(
            strided_stream(num_uops=2_000), variant=variant, probes=probe_names
        )

    def test_registry_lists_builtins(self):
        names = PROBE_REGISTRY.names()
        for expected in ("ipc_timeline", "stall_breakdown", "runahead_log", "mem_profile"):
            assert expected in names

    def test_build_probe_accepts_names_and_instances(self):
        assert isinstance(build_probe("ipc_timeline"), IPCTimelineProbe)
        instance = MemoryProfileProbe()
        assert build_probe(instance) is instance
        with pytest.raises(KeyError):
            build_probe("no_such_probe")

    def test_ipc_timeline_reports_monotonic_samples(self):
        result = self.run_with(["ipc_timeline"])
        report = result.probe_reports["ipc_timeline"]
        samples = report["samples"]
        assert samples, "timeline must contain samples"
        cycles = [cycle for cycle, _ in samples]
        committed = [count for _, count in samples]
        assert cycles == sorted(cycles)
        assert committed == sorted(committed)
        assert samples[-1][0] == result.stats.cycles
        assert samples[-1][1] == result.stats.committed_uops

    def test_stall_breakdown_accounts_every_cycle(self):
        result = self.run_with(["stall_breakdown"])
        report = result.probe_reports["stall_breakdown"]
        assert sum(report["cycles"].values()) == result.stats.cycles
        assert abs(sum(report["fractions"].values()) - 1.0) < 1e-9
        assert report["cycles"]["runahead"] == result.stats.runahead_cycles

    def test_runahead_log_matches_interval_stats(self):
        result = self.run_with(["runahead_log"])
        log = result.probe_reports["runahead_log"]
        assert len(log) == result.stats.runahead_invocations
        closed = [entry for entry in log if entry["exit"] >= 0]
        for entry in closed:
            assert entry["length"] == entry["exit"] - entry["entry"]
            assert entry["prefetches"] >= 0
        assert sum(e["prefetches"] for e in closed) <= result.stats.runahead_prefetches

    def test_mem_profile_counts_match_stats(self):
        result = self.run_with(["mem_profile"], variant="ooo")
        report = result.probe_reports["mem_profile"]
        assert report["total"] == sum(report["levels"].values())
        assert report["long_latency"] == result.stats.long_latency_loads
        assert report["total"] > 0

    def test_no_probes_means_empty_reports(self):
        result = run_variant(strided_stream(num_uops=800), variant="ooo")
        assert result.probe_reports == {}


class TestProbeSerde:
    def test_probe_reports_survive_json_round_trip(self):
        result = run_variant(
            strided_stream(num_uops=1_000),
            variant="pre",
            probes=["ipc_timeline", "mem_profile"],
        )
        restored = SimulationResult.from_dict(result.to_dict())
        assert restored.probe_reports == result.probe_reports
        assert restored.to_dict() == result.to_dict()


class TestEngineProbePlumbing:
    def test_sweep_attaches_probes_to_every_cell(self, tmp_path):
        engine = ExperimentEngine(cache_dir=tmp_path / "cache")
        spec = SweepSpec(
            workloads=["milc"],
            variants=["pre"],
            num_uops=600,
            probes=["stall_breakdown"],
        )
        sweep = engine.run_sweep(spec)
        for bench in sweep.comparison.benchmarks:
            for result in bench.results.values():
                assert "stall_breakdown" in result.probe_reports
        # Cached re-run serves identical cells, probe reports included.
        again = ExperimentEngine(cache_dir=tmp_path / "cache").run_sweep(spec)
        assert again.to_dict() == sweep.to_dict()

    def test_unknown_probe_rejected_before_running(self):
        engine = ExperimentEngine()
        with pytest.raises(KeyError):
            engine.run_sweep(
                SweepSpec(workloads=["milc"], variants=["pre"], num_uops=400,
                          probes=["bogus"])
            )

    def test_cache_key_distinguishes_probe_sets(self):
        config = CoreConfig()
        source = {"kind": "workload", "name": "milc", "num_uops": 500, "token": "t"}
        without = _job_payload("milc", "pre", source, None, config, None, None)
        with_probe = _job_payload(
            "milc", "pre", source, None, config, None, None, probes=["ipc_timeline"]
        )
        assert _job_cache_key(without) != _job_cache_key(with_probe)
