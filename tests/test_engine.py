"""Experiment engine: sweeps, caching, parallel/serial equivalence, CLI."""

import json

import pytest

from repro.registry import WORKLOAD_REGISTRY, register_workload
from repro.simulation.engine import (
    ExperimentEngine,
    ResultCache,
    SweepResult,
    SweepSpec,
)
from repro.simulation.experiment import ComparisonResult, run_comparison
from repro.workloads.generators import compute_kernel
from repro.workloads.spec_surrogates import build_surrogate

SMALL_SUITE = ("milc", "mcf")
SMALL_VARIANTS = ("ooo", "runahead", "pre")
SMALL_UOPS = 800


@pytest.fixture(scope="module")
def serial_sweep() -> SweepResult:
    engine = ExperimentEngine(workers=1)
    return engine.run_sweep(
        SweepSpec(workloads=list(SMALL_SUITE), variants=list(SMALL_VARIANTS),
                  num_uops=SMALL_UOPS)
    )


class TestSweepSpec:
    def test_baseline_always_included(self):
        spec = SweepSpec(workloads=["milc"], variants=["pre"])
        assert spec.resolved_variants()[0] == "ooo"

    def test_unknown_variant_rejected_early(self):
        spec = SweepSpec(workloads=["milc"], variants=["warp-drive"])
        with pytest.raises(KeyError, match="unknown variant"):
            spec.resolved_variants()

    def test_unknown_workload_rejected_early(self):
        spec = SweepSpec(workloads=["not-a-benchmark"])
        with pytest.raises(KeyError, match="unknown workload"):
            spec.resolved_workloads()

    def test_spec_roundtrip(self):
        spec = SweepSpec(workloads=["milc"], variants=["pre"], num_uops=500,
                         configs=[{"rob_size": 128}])
        assert SweepSpec.from_dict(spec.to_dict()) == spec


class TestEngineExecution:
    def test_engine_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            ExperimentEngine(workers=0)

    def test_sweep_produces_full_grid(self, serial_sweep):
        comparison = serial_sweep.comparison
        assert comparison.benchmark_names() == list(SMALL_SUITE)
        for bench in comparison.benchmarks:
            assert set(bench.results) == set(SMALL_VARIANTS)

    def test_parallel_results_bit_identical_to_serial(self, serial_sweep):
        engine = ExperimentEngine(workers=2)
        parallel = engine.run_sweep(
            SweepSpec(workloads=list(SMALL_SUITE), variants=list(SMALL_VARIANTS),
                      num_uops=SMALL_UOPS)
        )
        assert parallel.to_dict() == serial_sweep.to_dict()
        assert (parallel.comparison.performance_table()
                == serial_sweep.comparison.performance_table())
        assert (parallel.comparison.energy_table()
                == serial_sweep.comparison.energy_table())

    def test_run_comparison_matches_engine(self, serial_sweep):
        traces = [build_surrogate(name, num_uops=SMALL_UOPS) for name in SMALL_SUITE]
        legacy = run_comparison(traces, variants=SMALL_VARIANTS)
        assert legacy.to_dict() == serial_sweep.comparison.to_dict()

    def test_run_comparison_parallel_matches_serial(self):
        traces = [build_surrogate(name, num_uops=SMALL_UOPS) for name in SMALL_SUITE]
        serial = run_comparison(traces, variants=SMALL_VARIANTS)
        parallel = run_comparison(traces, variants=SMALL_VARIANTS, workers=2)
        assert serial.to_dict() == parallel.to_dict()

    def test_config_override_cells(self):
        engine = ExperimentEngine(workers=1)
        sweep = engine.run_sweep(
            SweepSpec(workloads=["milc"], variants=["pre"], num_uops=SMALL_UOPS,
                      configs=[{}, {"rob_size": 64}])
        )
        assert len(sweep.cells) == 2
        assert sweep.cells[0].overrides == {}
        assert sweep.cells[1].overrides == {"rob_size": 64}
        default_cfg = sweep.cells[0].comparison.benchmark("milc").results["pre"].config
        small_cfg = sweep.cells[1].comparison.benchmark("milc").results["pre"].config
        assert default_cfg.rob_size == 192
        assert small_cfg.rob_size == 64
        with pytest.raises(ValueError, match="configuration cells"):
            sweep.comparison  # ambiguous with two cells

    def test_custom_workload_swept_by_name(self):
        @register_workload("test_engine_kernel", description="test only")
        def _build(num_uops=400):
            trace = compute_kernel(num_uops=num_uops)
            trace.name = "test_engine_kernel"
            return trace

        try:
            engine = ExperimentEngine(workers=1)
            comparison = engine.run_workloads(
                ["test_engine_kernel"], variants=["ooo", "pre"], num_uops=300
            )
            assert comparison.benchmark("test_engine_kernel").baseline.stats.cycles > 0
        finally:
            WORKLOAD_REGISTRY.unregister("test_engine_kernel")


class TestResultCache:
    def test_cache_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("deadbeef") is None
        cache.put("deadbeef", {"value": 1})
        assert cache.get("deadbeef") == {"value": 1}
        assert cache.misses == 1
        assert cache.hits == 1
        assert len(cache) == 1

    def test_corrupt_entry_degrades_to_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.path_for("bad").write_text("{not json", encoding="utf-8")
        assert cache.get("bad") is None

    def test_second_sweep_fully_cached(self, tmp_path, serial_sweep):
        spec = SweepSpec(workloads=list(SMALL_SUITE), variants=list(SMALL_VARIANTS),
                         num_uops=SMALL_UOPS)
        engine = ExperimentEngine(workers=1, cache_dir=tmp_path)
        first = engine.run_sweep(spec)
        stats = engine.last_run_stats
        assert stats.simulated == stats.total_jobs == 6
        assert stats.cache_hits == 0

        second = engine.run_sweep(spec)
        stats = engine.last_run_stats
        assert stats.simulated == 0  # zero re-simulation
        assert stats.cache_hits == stats.total_jobs == 6
        assert second.to_dict() == first.to_dict() == serial_sweep.to_dict()

    def test_cache_key_sensitive_to_inputs(self, tmp_path):
        engine = ExperimentEngine(workers=1, cache_dir=tmp_path)
        spec = SweepSpec(workloads=["milc"], variants=["ooo"], num_uops=300)
        engine.run_sweep(spec)
        # Different trace length => different cells => nothing reused.
        engine.run_sweep(SweepSpec(workloads=["milc"], variants=["ooo"], num_uops=301))
        assert engine.last_run_stats.cache_hits == 0
        # Different config override => different cells => nothing reused.
        engine.run_sweep(
            SweepSpec(workloads=["milc"], variants=["ooo"], num_uops=300,
                      configs=[{"rob_size": 64}])
        )
        assert engine.last_run_stats.cache_hits == 0

    def test_trace_jobs_cached_by_content(self, tmp_path):
        trace = build_surrogate("milc", num_uops=300)
        engine = ExperimentEngine(workers=1, cache_dir=tmp_path)
        engine.run_traces([trace], variants=["ooo"])
        assert engine.last_run_stats.simulated == 1
        engine.run_traces([build_surrogate("milc", num_uops=300)], variants=["ooo"])
        assert engine.last_run_stats.cache_hits == 1
        assert engine.last_run_stats.simulated == 0


class TestSweepResultSerialization:
    def test_sweep_result_roundtrip(self, serial_sweep):
        restored = SweepResult.from_dict(
            json.loads(json.dumps(serial_sweep.to_dict()))
        )
        assert restored.to_dict() == serial_sweep.to_dict()
        assert isinstance(restored.comparison, ComparisonResult)
        table = restored.comparison.performance_table()
        assert table == serial_sweep.comparison.performance_table()


class TestCLI:
    def test_list_command(self, capsys):
        from repro.__main__ import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "pre_emq" in out
        assert "milc" in out

    def test_sweep_report_roundtrip(self, tmp_path, capsys):
        from repro.__main__ import main

        output = tmp_path / "sweep.json"
        code = main([
            "sweep",
            "--benchmarks", "milc",
            "--variants", "pre",
            "--uops", "300",
            "--cache-dir", str(tmp_path / "cache"),
            "--output", str(output),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "Figure 3" in out
        assert output.exists()

        assert main(["report", str(output), "--figure", "2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "milc" in out

    def test_sweep_with_config_override(self, capsys):
        from repro.__main__ import main

        code = main([
            "sweep",
            "--benchmarks", "milc",
            "--variants", "pre",
            "--uops", "300",
            "--set", "rob_size=64",
            "--figure", "summary",
        ])
        assert code == 0
        assert "speedup" in capsys.readouterr().out
