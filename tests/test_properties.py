"""Property-based tests (hypothesis) for the core data structures and invariants."""

from hypothesis import given, settings, strategies as st

from repro.core.prdq import PreciseRegisterDeallocationQueue
from repro.core.sst import StallingSliceTable
from repro.memory.cache import CacheConfig, SetAssociativeCache
from repro.memory.mshr import MSHRFile
from repro.simulation.metrics import arithmetic_mean, geometric_mean
from repro.uarch.core import DynInstr
from repro.uarch.regfile import PhysicalRegisterFile
from repro.uarch.rename import RegisterAliasTable
from repro.workloads.trace import (
    FP_REG_BASE,
    NUM_ARCH_REGS,
    MicroOp,
    Trace,
    UopClass,
)


lines = st.integers(min_value=0, max_value=255)


class TestCacheProperties:
    @given(st.lists(lines, min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_resident_lines_never_exceed_capacity(self, accesses):
        cache = SetAssociativeCache(CacheConfig("T", 8 * 64, 2))
        for line in accesses:
            addr = line * 64
            if not cache.lookup(addr):
                cache.fill(addr)
        assert cache.resident_lines() <= 8
        assert cache.stats.accesses == len(accesses)
        assert cache.stats.hits + cache.stats.misses == cache.stats.accesses

    @given(st.lists(lines, min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_most_recent_fill_is_always_resident(self, accesses):
        cache = SetAssociativeCache(CacheConfig("T", 4 * 64, 4))
        for line in accesses:
            cache.fill(line * 64)
            assert cache.contains(line * 64)


class TestSSTProperties:
    @given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=400))
    @settings(max_examples=50, deadline=None)
    def test_size_bounded_and_recent_insert_present(self, pcs):
        sst = StallingSliceTable(capacity=16)
        for pc in pcs:
            sst.insert(pc)
            assert pc in sst
            assert len(sst) <= 16
        assert sst.stats.evictions == max(0, sst.stats.inserts - 16)


class TestRegisterFileProperties:
    @given(st.lists(st.booleans(), min_size=1, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_allocate_free_conservation(self, operations):
        rf = PhysicalRegisterFile(64)
        allocated = []
        for allocate in operations:
            if allocate and rf.num_free:
                allocated.append(rf.allocate())
            elif allocated:
                rf.free(allocated.pop())
            assert rf.num_free + 32 + len(allocated) == 64
        assert len(set(allocated)) == len(allocated)


class TestRATProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=NUM_ARCH_REGS - 1),
                st.integers(min_value=0, max_value=167),
                st.integers(min_value=0, max_value=1 << 20),
            ),
            max_size=200,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_checkpoint_restore_roundtrip(self, renames):
        rat = RegisterAliasTable()
        checkpoint = rat.checkpoint()
        original = {arch: rat.physical(arch) for arch in range(NUM_ARCH_REGS)}
        for arch, phys, pc in renames:
            rat.rename(arch, phys, pc)
        rat.restore(checkpoint)
        assert {arch: rat.physical(arch) for arch in range(NUM_ARCH_REGS)} == original


class TestPRDQProperties:
    @given(st.data())
    @settings(max_examples=50, deadline=None)
    def test_deallocation_is_in_program_order(self, data):
        count = data.draw(st.integers(min_value=1, max_value=40))
        prdq = PreciseRegisterDeallocationQueue(capacity=64)
        instrs = []
        for seq in range(count):
            uop = MicroOp(pc=4 * seq, uop_class=UopClass.IALU, dst=1)
            instr = DynInstr(uop=uop, seq=seq, runahead=True)
            prdq.allocate(instr, old_preg=seq, old_is_fp=False, reclaim_old=True)
            instrs.append(instr)
        execution_order = data.draw(st.permutations(instrs))
        freed = []
        for instr in execution_order:
            prdq.mark_executed(instr)
            prdq.deallocate_ready(lambda fp, reg: freed.append(reg))
        assert freed == list(range(count))


class TestMSHRProperties:
    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=63), st.integers(min_value=1, max_value=400)),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, requests):
        mshrs = MSHRFile(num_entries=8)
        cycle = 0
        for line, latency in requests:
            cycle += 1
            mshrs.allocate(line * 64, completion_cycle=cycle + latency, cycle=cycle)
            assert mshrs.occupancy(cycle) <= 8


class TestTraceProperties:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from([UopClass.IALU, UopClass.FALU, UopClass.LOAD]),
                st.integers(min_value=0, max_value=NUM_ARCH_REGS - 1),
                st.integers(min_value=0, max_value=1 << 16),
            ),
            max_size=150,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_stats_counts_are_consistent(self, specs):
        uops = []
        for index, (uop_class, dst, line) in enumerate(specs):
            if uop_class is UopClass.LOAD:
                uops.append(
                    MicroOp(pc=4 * index, uop_class=uop_class, dst=dst, mem_addr=line * 64)
                )
            else:
                if uop_class is UopClass.FALU and dst < FP_REG_BASE:
                    dst = FP_REG_BASE + (dst % 32)
                uops.append(MicroOp(pc=4 * index, uop_class=uop_class, dst=dst))
        trace = Trace(uops)
        stats = trace.stats()
        assert stats.num_uops == len(uops)
        assert stats.num_loads == sum(1 for uop in uops if uop.is_load)
        assert stats.num_loads + stats.num_fp_ops + stats.num_int_ops <= stats.num_uops
        assert stats.unique_pcs <= stats.num_uops or stats.num_uops == 0


class TestMetricProperties:
    @given(st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=1, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_geometric_mean_bounded_by_arithmetic(self, values):
        geo = geometric_mean(values)
        arith = arithmetic_mean(values)
        assert min(values) - 1e-9 <= geo <= max(values) + 1e-9
        assert geo <= arith + 1e-9
