"""Streaming TraceSource protocol: sources, cursors, file format, equivalence."""

import pytest

from repro.registry import WORKLOAD_REGISTRY, build_workload, build_workload_source
from repro.simulation.simulator import run_variant
from repro.uarch.core import OoOCore
from repro.workloads.generators import multi_slice_kernel, strided_stream
from repro.workloads.source import (
    FileTraceSource,
    GeneratorSource,
    MaterializedCursor,
    MaterializedTrace,
    StreamingCursor,
    TraceFileError,
    WindowedSource,
    as_source,
    read_trace_header,
    streaming_trace_stats,
    trace_file_digest,
    write_trace_file,
)
from repro.workloads.trace import MicroOp, Trace, UopClass


def small_trace():
    return strided_stream(num_uops=400)


class TestProtocol:
    def test_as_source_wraps_traces(self):
        trace = small_trace()
        source = as_source(trace)
        assert isinstance(source, MaterializedTrace)
        assert source.name == trace.name
        assert source.length == len(trace)
        assert list(source) == list(trace)

    def test_as_source_passes_sources_through(self):
        source = MaterializedTrace(small_trace())
        assert as_source(source) is source

    def test_as_source_rejects_other_types(self):
        with pytest.raises(TypeError):
            as_source([1, 2, 3])

    def test_open_restarts_from_the_beginning(self):
        source = GeneratorSource(strided_stream.stream, {"num_uops": 120})
        first = list(source.open())
        second = list(source.open())
        assert first == second
        assert len(first) >= 120

    def test_materialize_round_trip(self):
        source = GeneratorSource(strided_stream.stream, {"num_uops": 120}, name="s")
        trace = source.materialize()
        assert isinstance(trace, Trace)
        assert trace.name == "s"
        assert list(trace) == list(source)


class TestGeneratorSource:
    def test_stream_matches_eager_trace_for_every_registered_workload(self):
        for name in WORKLOAD_REGISTRY.names():
            trace = build_workload(name, num_uops=600)
            source = build_workload_source(name, num_uops=600)
            assert source.name == trace.name == name
            assert list(source) == list(trace), f"stream != eager for {name}"

    def test_empty_stream_finishes_cleanly(self):
        # Regression: an unknown-length source whose exhaustion is discovered
        # mid-step must finish, not raise SimulationDeadlock.
        empty = GeneratorSource(lambda: iter(()), {}, name="empty")
        result = run_variant(empty, variant="ooo")
        assert result.stats.committed_uops == 0
        eager = run_variant(Trace([], name="empty"), variant="ooo")
        assert result.stats.cycles == eager.stats.cycles

    def test_unknown_length_until_exhausted(self):
        source = GeneratorSource(strided_stream.stream, {"num_uops": 100})
        assert source.length is None
        cursor = source.cursor()
        assert cursor.known_length is None
        index = 0
        while cursor.has(index):
            index += 1
        assert cursor.known_length == index


class TestCursors:
    def test_materialized_cursor_is_randomly_accessible(self):
        trace = small_trace()
        cursor = MaterializedTrace(trace).cursor()
        assert isinstance(cursor, MaterializedCursor)
        assert cursor.known_length == len(trace)
        assert cursor.get(0) == trace[0]
        assert cursor.get(len(trace) - 1) == trace[len(trace) - 1]
        assert not cursor.has(len(trace))
        cursor.trim(100)  # no-op
        assert cursor.get(0) == trace[0]

    def test_streaming_cursor_rewinds_within_retained_window(self):
        trace = small_trace()
        source = GeneratorSource(strided_stream.stream, {"num_uops": 400})
        cursor = StreamingCursor(source)
        for index in range(50):
            assert cursor.get(index) == trace[index]
        # Rewind to any untrimmed index is exact.
        assert cursor.get(3) == trace[3]
        cursor.trim(40)
        assert cursor.get(40) == trace[40]
        with pytest.raises(IndexError):
            cursor.get(39)

    def test_streaming_cursor_past_end(self):
        source = GeneratorSource(strided_stream.stream, {"num_uops": 50})
        cursor = StreamingCursor(source)
        index = 0
        while cursor.has(index):
            index += 1
        with pytest.raises(IndexError):
            cursor.get(index)


class TestWindowedSource:
    def test_window_equals_trace_slice(self):
        trace = small_trace()
        base = MaterializedTrace(trace)
        window = WindowedSource(base, 100, 250)
        assert list(window) == list(trace)[100:250]
        assert window.length == 150
        assert "[100:250]" in window.name

    def test_window_clamps_to_stream_end(self):
        base = MaterializedTrace(small_trace())
        total = base.length
        window = WindowedSource(base, total - 10, total + 50)
        assert len(list(window)) == 10
        assert window.length == 10

    def test_invalid_window_rejected(self):
        base = MaterializedTrace(small_trace())
        with pytest.raises(ValueError):
            WindowedSource(base, 50, 10)

    def test_window_on_streaming_source(self):
        trace = small_trace()
        source = GeneratorSource(strided_stream.stream, {"num_uops": 400})
        window = WindowedSource(source, 30, 60)
        assert list(window) == list(trace)[30:60]


class TestTraceFile:
    def all_shapes_trace(self):
        return Trace(
            [
                MicroOp(pc=0x1000, uop_class=UopClass.IALU, srcs=(1, 2), dst=3),
                MicroOp(pc=0x1004, uop_class=UopClass.IMUL, srcs=(3,), dst=4),
                MicroOp(pc=0x1008, uop_class=UopClass.IDIV, srcs=(4, 4), dst=5),
                MicroOp(pc=0x100C, uop_class=UopClass.FALU, srcs=(32, 33), dst=34),
                MicroOp(pc=0x1010, uop_class=UopClass.FMUL, srcs=(34,), dst=35),
                MicroOp(pc=0x1014, uop_class=UopClass.FDIV, srcs=(35,), dst=36),
                MicroOp(pc=0x1018, uop_class=UopClass.LOAD, srcs=(1,), dst=2,
                        mem_addr=0xDEAD_BEEF_0, mem_size=16),
                MicroOp(pc=0x101C, uop_class=UopClass.STORE, srcs=(2, 34),
                        mem_addr=0x2000, mem_size=4),
                MicroOp(pc=0x1020, uop_class=UopClass.BRANCH, srcs=(5,),
                        branch_taken=True, branch_target=0x1000),
                MicroOp(pc=0x1024, uop_class=UopClass.BRANCH, srcs=(),
                        branch_taken=False, branch_target=None),
                MicroOp(pc=0x1028, uop_class=UopClass.NOP),
            ],
            name="shapes",
        )

    def test_round_trip_every_uop_shape(self, tmp_path):
        trace = self.all_shapes_trace()
        path = tmp_path / "shapes.trc"
        count = write_trace_file(path, trace)
        assert count == len(trace)
        source = FileTraceSource(path)
        assert source.name == "shapes"
        assert source.length == len(trace)
        assert list(source) == list(trace)
        # Reopen replays the identical stream.
        assert list(source) == list(trace)

    def test_header_and_digest(self, tmp_path):
        path = tmp_path / "t.trc"
        write_trace_file(path, small_trace(), name="custom")
        header = read_trace_header(path)
        assert header["name"] == "custom"
        assert header["count"] == len(small_trace())
        digest_one = trace_file_digest(path)
        write_trace_file(path, strided_stream(num_uops=500), name="custom")
        assert trace_file_digest(path) != digest_one

    def test_rejects_garbage_files(self, tmp_path):
        path = tmp_path / "garbage.trc"
        path.write_bytes(b"\x00\x01\x02 not a trace\n more binary")
        with pytest.raises(TraceFileError):
            read_trace_header(path)
        json_path = tmp_path / "json.trc"
        json_path.write_text('{"format": "other"}\n')
        with pytest.raises(TraceFileError):
            FileTraceSource(json_path)

    def test_truncated_body_raises(self, tmp_path):
        path = tmp_path / "t.trc"
        write_trace_file(path, small_trace())
        data = path.read_bytes()
        (tmp_path / "cut.trc").write_bytes(data[: len(data) - 40])
        source = FileTraceSource(tmp_path / "cut.trc")
        with pytest.raises((TraceFileError, EOFError)):
            list(source)

    def test_streaming_stats_match_trace_stats(self, tmp_path):
        trace = multi_slice_kernel(num_uops=800)
        path = tmp_path / "m.trc"
        write_trace_file(path, trace)
        streamed = streaming_trace_stats(FileTraceSource(path))
        assert streamed == trace.stats()


class TestStreamingEquivalence:
    """Satellite: streaming == materialized, bit-identical stats and energy."""

    def test_every_registered_workload_bit_identical(self):
        for name in WORKLOAD_REGISTRY.names():
            trace = build_workload(name, num_uops=1_200)
            source = build_workload_source(name, num_uops=1_200)
            eager = run_variant(trace, variant="pre")
            streamed = run_variant(source, variant="pre")
            assert streamed.stats.to_dict() == eager.stats.to_dict(), name
            assert streamed.energy.to_dict() == eager.energy.to_dict(), name

    def test_oracle_variant_materializes_streaming_sources(self):
        trace = strided_stream(num_uops=1_500)
        source = GeneratorSource(
            strided_stream.stream, {"num_uops": 1_500}, name=trace.name
        )
        eager = run_variant(trace, variant="runahead_buffer")
        streamed = run_variant(source, variant="runahead_buffer")
        assert streamed.stats.to_dict() == eager.stats.to_dict()


class TestStreamingMemory:
    """Acceptance: a GeneratorSource run ≥10x any seed workload at O(window) memory."""

    def test_large_stream_runs_at_window_memory(self):
        # Seed workloads top out at 20k micro-ops; stream 10x that.
        num_uops = 200_000
        source = GeneratorSource(
            strided_stream.stream, {"num_uops": num_uops}, name="big_stream"
        )
        core = OoOCore(source)  # baseline core: no oracle, pure streaming
        stats = core.run()
        assert stats.committed_uops >= num_uops
        cursor = core.frontend.cursor
        assert isinstance(cursor, StreamingCursor)
        assert not isinstance(cursor, MaterializedCursor)
        # The retained window never grew past the in-flight machine state —
        # three orders of magnitude below the trace length.
        assert cursor.peak_buffered < 5_000
        assert len(cursor._buffer) < 5_000
